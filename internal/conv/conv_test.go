package conv

import (
	"testing"
	"testing/quick"

	"ndirect/internal/tensor"
)

func TestOutputGeometry(t *testing.T) {
	// ResNet-50 conv1: 224x224, 7x7, stride 2, pad 3 -> 112x112.
	s := Shape{N: 1, C: 3, H: 224, W: 224, K: 64, R: 7, S: 7, Str: 2, Pad: 3}
	if s.P() != 112 || s.Q() != 112 {
		t.Fatalf("P,Q = %d,%d want 112,112", s.P(), s.Q())
	}
	// 3x3 stride 1 pad 1 preserves the size.
	s = Shape{N: 1, C: 8, H: 56, W: 56, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	if s.P() != 56 || s.Q() != 56 {
		t.Fatalf("P,Q = %d,%d want 56,56", s.P(), s.Q())
	}
	// 1x1 stride 2 halves (rounding up).
	s = Shape{N: 1, C: 8, H: 56, W: 56, K: 8, R: 1, S: 1, Str: 2, Pad: 0}
	if s.P() != 28 || s.Q() != 28 {
		t.Fatalf("P,Q = %d,%d want 28,28", s.P(), s.Q())
	}
}

func TestValid(t *testing.T) {
	good := Shape{N: 1, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Str: 1, Pad: 0}
	if !good.Valid() {
		t.Fatal("good shape rejected")
	}
	bad := good
	bad.R = 5 // kernel larger than padded input
	if bad.Valid() {
		t.Fatal("kernel larger than input accepted")
	}
	bad = good
	bad.Str = 0
	if bad.Valid() {
		t.Fatal("zero stride accepted")
	}
	bad = good
	bad.Pad = -1
	if bad.Valid() {
		t.Fatal("negative padding accepted")
	}
}

func TestFLOPs(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	// 2 * N*K*P*Q*C*R*S = 2*2*4*8*8*3*3*3
	want := int64(2 * 2 * 4 * 8 * 8 * 3 * 3 * 3)
	if s.FLOPs() != want {
		t.Fatalf("FLOPs = %d, want %d", s.FLOPs(), want)
	}
}

func TestByteCountsAndIntensity(t *testing.T) {
	s := Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 1, S: 1, Str: 1, Pad: 0}
	if s.InputBytes() != 4*32 || s.FilterBytes() != 4*4 || s.OutputBytes() != 4*32 {
		t.Fatalf("bytes: in=%d f=%d out=%d", s.InputBytes(), s.FilterBytes(), s.OutputBytes())
	}
	if s.ArithmeticIntensity() <= 0 {
		t.Fatal("intensity must be positive")
	}
}

func TestWithBatch(t *testing.T) {
	s := Table4[0].Shape.WithBatch(64)
	if s.N != 64 || Table4[0].Shape.N != 1 {
		t.Fatal("WithBatch must copy, not mutate")
	}
}

// Reference cross-check against an independently hand-computed tiny
// example: 1x1x3x3 input, 1x1x2x2 filter, stride 1, no padding.
func TestReferenceHandComputed(t *testing.T) {
	s := Shape{N: 1, C: 1, H: 3, W: 3, K: 1, R: 2, S: 2, Str: 1, Pad: 0}
	in := s.NewInput()
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f := s.NewFilter()
	copy(f.Data, []float32{1, 0, 0, 1}) // identity-ish: out = a + d of each 2x2 patch
	out := Reference(s, in, f)
	want := []float32{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestReferencePaddingZeros(t *testing.T) {
	// All-ones input and filter: with pad 1, corner outputs see only
	// 4 of the 9 taps.
	s := Shape{N: 1, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.Fill(1)
	f := s.NewFilter()
	f.Fill(1)
	out := Reference(s, in, f)
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner = %v, want 4", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 1, 1) != 9 {
		t.Fatalf("centre = %v, want 9", out.At(0, 0, 1, 1))
	}
	if out.At(0, 0, 0, 1) != 6 {
		t.Fatalf("edge = %v, want 6", out.At(0, 0, 0, 1))
	}
}

func TestReferenceStride2(t *testing.T) {
	s := Shape{N: 1, C: 1, H: 4, W: 4, K: 1, R: 1, S: 1, Str: 2, Pad: 0}
	in := s.NewInput()
	in.FillSequence() // 0..15
	f := s.NewFilter()
	f.Fill(2)
	out := Reference(s, in, f)
	want := []float32{0, 4, 16, 20} // 2 * elements (0,0),(0,2),(2,0),(2,2)
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestReferenceMultiChannelAccumulates(t *testing.T) {
	s := Shape{N: 1, C: 3, H: 2, W: 2, K: 2, R: 1, S: 1, Str: 1, Pad: 0}
	in := s.NewInput()
	in.Fill(1)
	f := s.NewFilter()
	f.Fill(1)
	out := Reference(s, in, f)
	for _, v := range out.Data {
		if v != 3 { // sum over 3 channels
			t.Fatalf("out = %v, want all 3", out.Data)
		}
	}
}

// Property: convolution is linear in the input — Reference(a*x) ==
// a*Reference(x) for scalar a (exact for power-of-two scalars).
func TestReferenceLinearityProperty(t *testing.T) {
	s := Shape{N: 1, C: 2, H: 6, W: 6, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	f := s.NewFilter()
	f.FillRandom(3)
	check := func(seed int64) bool {
		in := s.NewInput()
		in.FillRandom(seed)
		out1 := Reference(s, in, f)
		for i := range in.Data {
			in.Data[i] *= 4
		}
		out4 := Reference(s, in, f)
		for i := range out1.Data {
			if out1.Data[i]*4 != out4.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOperandsPanics(t *testing.T) {
	s := Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched input dims")
		}
	}()
	CheckOperands(s, tensor.New(1, 3, 4, 4), s.NewFilter())
}

func TestTable4Complete(t *testing.T) {
	if len(Table4) != 28 {
		t.Fatalf("Table4 has %d rows, want 28", len(Table4))
	}
	for i, l := range Table4 {
		if l.ID != i+1 {
			t.Fatalf("row %d has ID %d", i, l.ID)
		}
		if !l.Shape.Valid() {
			t.Fatalf("layer %d invalid: %v", l.ID, l.Shape)
		}
	}
	// ResNet vs VGG split.
	for _, l := range Table4[:23] {
		if l.Net != "ResNet-50" {
			t.Fatalf("layer %d net = %s", l.ID, l.Net)
		}
	}
	for _, l := range Table4[23:] {
		if l.Net != "VGG-16" {
			t.Fatalf("layer %d net = %s", l.ID, l.Net)
		}
	}
}

func TestTable4GeometryConsistency(t *testing.T) {
	// Every ResNet layer must produce one of the network's canonical
	// feature map sizes; VGG layers preserve their input size.
	canonical := map[int]bool{112: true, 56: true, 28: true, 14: true, 7: true}
	for _, l := range Table4[:23] {
		if !canonical[l.Shape.P()] {
			t.Errorf("layer %d output %d not a ResNet-50 feature size", l.ID, l.Shape.P())
		}
	}
	for _, l := range VGGLayers() {
		if l.Shape.P() != l.Shape.H {
			t.Errorf("VGG layer %d must preserve spatial size", l.ID)
		}
	}
}

func TestLayerByID(t *testing.T) {
	l, ok := LayerByID(17)
	if !ok || l.Shape.C != 1024 || l.Shape.K != 2048 {
		t.Fatalf("layer 17 = %+v", l)
	}
	if _, ok := LayerByID(0); ok {
		t.Fatal("ID 0 must not resolve")
	}
	dw, ok := LayerByID(29)
	if !ok || !dw.Depthwise || dw.Shape.C != 32 || dw.Shape.H != 112 || dw.Shape.Str != 1 {
		t.Fatalf("MobileNet row 29 = %+v, ok=%v", dw, ok)
	}
	pw, ok := LayerByID(32)
	if !ok || pw.Depthwise || pw.Shape.C != 128 || pw.Shape.K != 256 || pw.Shape.R != 1 {
		t.Fatalf("MobileNet row 32 = %+v, ok=%v", pw, ok)
	}
	if _, ok := LayerByID(len(Table4) + len(MobileNetRows) + 1); ok {
		t.Fatal("past-the-end ID must not resolve")
	}
	if got := AllLayers(); len(got) != len(Table4)+len(MobileNetRows) {
		t.Fatalf("AllLayers length %d", len(got))
	}
}

func TestLayerSubsets(t *testing.T) {
	if got := Layers1to20(); len(got) != 20 || got[19].ID != 20 {
		t.Fatal("Layers1to20 wrong")
	}
	if got := VGGLayers(); len(got) != 5 || got[0].ID != 24 {
		t.Fatal("VGGLayers wrong")
	}
}

// Property: translation equivariance — for stride 1 and no padding,
// shifting the input one column right shifts the output one column
// right (interior columns).
func TestReferenceTranslationEquivariance(t *testing.T) {
	s := Shape{N: 1, C: 3, H: 8, W: 10, K: 2, R: 3, S: 3, Str: 1, Pad: 0}
	f := s.NewFilter()
	f.FillRandom(1)
	in := s.NewInput()
	in.FillRandom(2)
	shifted := s.NewInput()
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 1; w < s.W; w++ {
					shifted.Set(in.At(n, c, h, w-1), n, c, h, w)
				}
			}
		}
	}
	a := Reference(s, in, f)
	b := Reference(s, shifted, f)
	p, q := s.P(), s.Q()
	for k := 0; k < s.K; k++ {
		for oj := 0; oj < p; oj++ {
			for oi := 1; oi < q; oi++ {
				if a.At(0, k, oj, oi-1) != b.At(0, k, oj, oi) {
					t.Fatalf("equivariance broken at k=%d oj=%d oi=%d", k, oj, oi)
				}
			}
		}
	}
}

// Property: a delta filter (1 at centre tap, zero elsewhere) makes
// the convolution an identity on each channel-summed input.
func TestReferenceDeltaFilterIdentity(t *testing.T) {
	s := Shape{N: 1, C: 1, H: 6, W: 6, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.Set(1, 0, 0, 1, 1) // centre tap
	out := Reference(s, in, f)
	if tensor.MaxAbsDiff(in, out.Reshape(1, 1, 6, 6)) != 0 {
		t.Fatal("delta filter must reproduce the input")
	}
}
