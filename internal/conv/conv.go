// Package conv defines the convolution problem in the paper's notation
// (Table 1), supplies the naive reference implementation (Algorithm 1)
// that every optimised algorithm is validated against, and carries the
// evaluation workloads of Table 4.
package conv

import (
	"context"
	"fmt"

	"ndirect/internal/tensor"
)

// Shape describes one convolution operator using the paper's notation
// (Table 1): input I[N][C][H][W], filter F[K][C][R][S], output
// O[N][K][P][Q], with stride str and symmetric zero padding Pad.
//
// The paper's algorithm listings omit padding for clarity; the
// evaluation layers (ResNet/VGG) all use the standard "same"-style
// padding recorded in the workload table, so the implementation
// supports it throughout.
type Shape struct {
	N   int // batch size
	C   int // input channels
	H   int // input height
	W   int // input width
	K   int // output channels
	R   int // kernel height
	S   int // kernel width
	Str int // stride (same in both spatial dimensions)
	Pad int // symmetric zero padding (same on all four edges)
}

// P returns the output height: (H + 2·Pad − R)/Str + 1.
func (s Shape) P() int { return (s.H+2*s.Pad-s.R)/s.Str + 1 }

// Q returns the output width: (W + 2·Pad − S)/Str + 1.
func (s Shape) Q() int { return (s.W+2*s.Pad-s.S)/s.Str + 1 }

// Valid reports whether the shape describes a realisable convolution;
// it is Validate() == nil for callers that only need the predicate.
func (s Shape) Valid() bool { return s.Validate() == nil }

// FLOPs returns the number of floating point operations of the
// convolution (2 per multiply-accumulate), the quantity all GFLOPS
// numbers in the paper are computed from.
func (s Shape) FLOPs() int64 {
	return 2 * int64(s.N) * int64(s.K) * int64(s.P()) * int64(s.Q()) *
		int64(s.C) * int64(s.R) * int64(s.S)
}

// InputBytes returns the FP32 size of the input tensor.
func (s Shape) InputBytes() int64 { return 4 * int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W) }

// FilterBytes returns the FP32 size of the filter tensor.
func (s Shape) FilterBytes() int64 { return 4 * int64(s.K) * int64(s.C) * int64(s.R) * int64(s.S) }

// OutputBytes returns the FP32 size of the output tensor.
func (s Shape) OutputBytes() int64 {
	return 4 * int64(s.N) * int64(s.K) * int64(s.P()) * int64(s.Q())
}

// ArithmeticIntensity returns FLOPs per byte touched once (input +
// filter + output), the roofline x-coordinate of the layer.
func (s Shape) ArithmeticIntensity() float64 {
	return float64(s.FLOPs()) / float64(s.InputBytes()+s.FilterBytes()+s.OutputBytes())
}

// WithBatch returns a copy of the shape with batch size n — the
// evaluation sets N to the core count of each platform (§7.2).
func (s Shape) WithBatch(n int) Shape {
	s.N = n
	return s
}

func (s Shape) String() string {
	return fmt.Sprintf("N%d C%d H%d W%d K%d R%d S%d str%d pad%d -> P%d Q%d",
		s.N, s.C, s.H, s.W, s.K, s.R, s.S, s.Str, s.Pad, s.P(), s.Q())
}

// NewInput allocates the NCHW input tensor for the shape.
func (s Shape) NewInput() *tensor.Tensor { return tensor.New(s.N, s.C, s.H, s.W) }

// NewFilter allocates the KCRS filter tensor for the shape.
func (s Shape) NewFilter() *tensor.Tensor { return tensor.New(s.K, s.C, s.R, s.S) }

// NewOutput allocates the NCHW (i.e. NKPQ) output tensor.
func (s Shape) NewOutput() *tensor.Tensor { return tensor.New(s.N, s.K, s.P(), s.Q()) }

// Reference computes the convolution with the seven-loop naive
// algorithm of the paper's Algorithm 1, extended with zero padding.
// It is the correctness oracle for every optimised implementation in
// this repository. in is NCHW, filter is KCRS; the NKPQ result is
// freshly allocated.
func Reference(s Shape, in, filter *tensor.Tensor) *tensor.Tensor {
	out, err := ReferenceCtx(context.Background(), s, in, filter)
	if err != nil {
		panic(err) // unreachable: Background never expires
	}
	return out
}

// ReferenceCtx is Reference bounded by ctx: the context is polled
// between output rows, and on expiry the partial result is dropped
// and an error wrapping ErrDeadline (and the context's cause) is
// returned — the cancellable oracle behind the deadline-bounded
// reference fallback of the core driver. Operand validation failures
// panic as in Reference (it is the trusted-caller oracle).
func ReferenceCtx(ctx context.Context, s Shape, in, filter *tensor.Tensor) (*tensor.Tensor, error) {
	checkOperands(s, in, filter)
	out := s.NewOutput()
	p, q := s.P(), s.Q()
	poll := ctx.Done() != nil
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			for oj := 0; oj < p; oj++ {
				if poll && ctx.Err() != nil {
					return nil, fmt.Errorf("%w: %w", ErrDeadline, context.Cause(ctx))
				}
				for oi := 0; oi < q; oi++ {
					var acc float64
					ij := s.Str*oj - s.Pad
					ii := s.Str*oi - s.Pad
					for c := 0; c < s.C; c++ {
						for r := 0; r < s.R; r++ {
							ih := ij + r
							if ih < 0 || ih >= s.H {
								continue
							}
							for ss := 0; ss < s.S; ss++ {
								iw := ii + ss
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += float64(in.Data[((n*s.C+c)*s.H+ih)*s.W+iw]) *
									float64(filter.Data[((k*s.C+c)*s.R+r)*s.S+ss])
							}
						}
					}
					out.Data[((n*s.K+k)*p+oj)*q+oi] = float32(acc)
				}
			}
		}
	}
	return out, nil
}

func checkOperands(s Shape, in, filter *tensor.Tensor) {
	if err := ValidateOperands(s, in, filter); err != nil {
		panic(err)
	}
}

// CheckOperands validates tensor dimensions against the shape,
// panicking with a descriptive message on mismatch. It is the
// panicking wrapper over ValidateOperands, kept for the baseline
// implementations; new code should prefer the error-returning form.
func CheckOperands(s Shape, in, filter *tensor.Tensor) { checkOperands(s, in, filter) }
