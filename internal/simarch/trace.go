package simarch

import (
	"ndirect/internal/conv"
	"ndirect/internal/model"
)

// Trace generators. Each replays a representative steady-state window
// of the algorithm's memory access stream — a few register tiles with
// the real address arithmetic of the real layouts — through the cache
// hierarchy. The estimator scales the observed per-level stall cycles
// by TraceFlops to the whole problem.
//
// Windows are deliberately small (≲10^5 accesses) so projections are
// instant; they capture the reuse structure (packed buffers and
// transformed filters re-hit in L1, strided raw-input reads conflict,
// pseudo-random replacement keeps hot lines less reliably than LRU),
// which is what differentiates the algorithms and platforms.

// Window clamps.
const (
	winRows   = 2 // output rows per window
	winTiles  = 3 // register tiles per row
	winBlocks = 4 // max V_k/K blocks
	winChans  = 32
)

func addr4(base uint64, floatIndex int) uint64 { return base + uint64(floatIndex)*4 }

// vecRange emits vector loads covering floats [lo, lo+n) of a region.
func vecRange(h *Hierarchy, base uint64, lo, n int) {
	for x := 0; x < n; x += 4 {
		h.Access(addr4(base, lo+x))
	}
}

// vecRangeW emits vector stores covering floats [lo, lo+n).
func vecRangeW(h *Hierarchy, base uint64, lo, n int) {
	for x := 0; x < n; x += 4 {
		h.Write(addr4(base, lo+x))
	}
}

// --- nDirect ---

func ndirectWindow(s conv.Shape, rt model.RegTile, ct model.CacheTiles) (tc, kvBlocks int) {
	tc = min(ct.Tc, min(s.C, winChans))
	kvBlocks = min(winBlocks, ceilDiv(min(s.K, ct.Tk), rt.Vk))
	return tc, kvBlocks
}

func traceNDirect(s conv.Shape, rt model.RegTile, ct model.CacheTiles) func(h *Hierarchy) {
	return func(h *Hierarchy) {
		tc, kvBlocks := ndirectWindow(s, rt, ct)
		wIn := (rt.Vw-1)*s.Str + s.S
		for oh := 0; oh < winRows; oh++ {
			for qt := 0; qt < winTiles; qt++ {
				qt0 := qt * rt.Vw
				// Packing pass: read the raw input rows (strided NCHW
				// addresses), write the linear buffer.
				for cv := 0; cv < tc; cv++ {
					for r := 0; r < s.R; r++ {
						ih := oh*s.Str + r
						rowBase := (cv*s.H + ih) * s.W
						vecRange(h, baseInput, rowBase+qt0*s.Str, wIn)
						vecRangeW(h, basePackBuf, (cv*s.R+r)*wIn, wIn)
					}
				}
				// L7: V_k blocks over the packed buffer + transformed
				// filter.
				for kb := 0; kb < kvBlocks; kb++ {
					for cv := 0; cv < tc; cv++ {
						for r := 0; r < s.R; r++ {
							vecRange(h, basePackBuf, (cv*s.R+r)*wIn, wIn)
							fBase := (((kb*tc+cv)*s.R + r) * s.S) * rt.Vk
							vecRange(h, baseTFilter, fBase, s.S*rt.Vk)
						}
					}
					// Store the register tile.
					for lane := 0; lane < rt.Vk; lane++ {
						out := ((kb*rt.Vk+lane)*s.P() + oh) * s.Q()
						vecRangeW(h, baseOutput, out+qt0, rt.Vw)
					}
				}
			}
		}
	}
}

func traceNDirectFlops(s conv.Shape, rt model.RegTile, ct model.CacheTiles) int64 {
	tc, kvBlocks := ndirectWindow(s, rt, ct)
	return int64(winRows*winTiles*kvBlocks) * int64(2*tc*s.R*s.S*rt.Vw*rt.Vk)
}

// --- im2col + GEMM ---

func traceGEMM(s conv.Shape) func(h *Hierarchy) {
	kc := min(256, s.C*s.R*s.S)
	return func(h *Hierarchy) {
		for tile := 0; tile < winTiles*2; tile++ {
			// One 8×12 micro-kernel: packed A and B panels stream
			// unit-stride.
			aBase := tile % 2 * kc * 8 // two A panels alternate
			bBase := tile * kc * 12
			for kk := 0; kk < kc; kk++ {
				vecRange(h, baseMatrix, bBase+kk*12, 12)
				vecRange(h, baseFilter, aBase+kk*8, 8)
			}
			for i := 0; i < 8; i++ {
				vecRangeW(h, baseOutput, tile*96+i*12, 12)
			}
		}
	}
}

func traceGEMMFlops(s conv.Shape) int64 {
	kc := min(256, s.C*s.R*s.S)
	return int64(winTiles*2) * int64(kc) * 192
}

// --- LIBXSMM ---

func traceXSMM(s conv.Shape) func(h *Hierarchy) {
	cBlocks := min(ceilDiv(s.C, 8), winChans/8+1)
	return func(h *Hierarchy) {
		for oh := 0; oh < winRows; oh++ {
			for tile := 0; tile < winTiles; tile++ {
				ow0 := tile * 6
				for cb := 0; cb < cBlocks; cb++ {
					for r := 0; r < s.R; r++ {
						ih := oh*s.Str + r
						for ss := 0; ss < s.S; ss++ {
							fBase := ((cb*s.R+r)*s.S + ss) * 64
							for i := 0; i < 6; i++ {
								iw := (ow0+i)*s.Str + ss
								inBase := ((cb*s.H+ih)*s.W + iw) * 8
								vecRange(h, baseInput, inBase, 8)
								// The filter panel is re-walked per
								// output column — LIBXSMM's sequential
								// load stream.
								vecRange(h, baseFilter, fBase, 64)
							}
						}
					}
				}
				for i := 0; i < 6; i++ {
					vecRangeW(h, baseOutput, (oh*s.Q()+ow0+i)*8, 8)
				}
			}
		}
	}
}

func traceXSMMFlops(s conv.Shape) int64 {
	cBlocks := min(ceilDiv(s.C, 8), winChans/8+1)
	return int64(winRows*winTiles) * int64(cBlocks*s.R*s.S) * int64(2*6*8*8)
}

// --- XNNPACK ---

func traceXNN(s conv.Shape) func(h *Hierarchy) {
	c := min(s.C, winChans*2)
	return func(h *Hierarchy) {
		for oh := 0; oh < winRows; oh++ {
			for tile := 0; tile < winTiles; tile++ {
				ow0 := tile * 4
				for r := 0; r < s.R; r++ {
					for ss := 0; ss < s.S; ss++ {
						// Indirection entries for the 4 pixels.
						h.Access(addr4(baseIndirect, ((oh*s.Q()+ow0)*s.R*s.S+r*s.S+ss)&^3))
						for cc := 0; cc < c; cc += 4 {
							fBase := (((r*s.S + ss) * s.C) + cc) * 8
							vecRange(h, baseFilter, fBase, 8)
							for i := 0; i < 4; i++ {
								ih := oh*s.Str + r
								iw := (ow0+i)*s.Str + ss
								// NHWC row gather: contiguous in c.
								h.Access(addr4(baseInput, ((ih*s.W+iw)*s.C)+cc))
							}
						}
					}
				}
				for i := 0; i < 4; i++ {
					vecRangeW(h, baseOutput, (oh*s.Q()+ow0+i)*s.K, min(s.K, 8))
				}
			}
		}
	}
}

func traceXNNFlops(s conv.Shape) int64 {
	c := min(s.C, winChans*2)
	return int64(winRows*winTiles) * int64(s.R*s.S) * int64(ceilDiv(c, 4)) * int64(2*4*4*8)
}

// --- ACL direct ---

// kReps replays the per-output-channel input re-read of the
// unblocked schedules (ACL, Ansor): in steady state consecutive
// output channels re-walk the same input rows, so later passes hit
// the cache.
const kReps = 4

func traceACL(s conv.Shape) func(h *Hierarchy) {
	c := min(s.C, winChans)
	return func(h *Hierarchy) {
		for oh := 0; oh < winRows; oh++ {
			for ow0 := 0; ow0 < winTiles*4; ow0 += 4 {
				for kk := 0; kk < kReps; kk++ {
					for cc := 0; cc < c; cc++ {
						for r := 0; r < s.R; r++ {
							ih := oh*s.Str + r
							rowBase := (cc*s.H + ih) * s.W
							for ss := 0; ss < s.S; ss++ {
								h.Access(addr4(baseInput, rowBase+ow0*s.Str+ss))
								h.Access(addr4(baseFilter, ((kk*s.C+cc)*s.R+r)*s.S+ss))
							}
						}
					}
					vecRangeW(h, baseOutput, (kk*s.P()+oh)*s.Q()+ow0, 4)
				}
			}
		}
	}
}

func traceACLFlops(s conv.Shape) int64 {
	c := min(s.C, winChans)
	return int64(winRows*winTiles*kReps) * int64(c*s.R*s.S) * int64(2*4)
}

// --- Ansor (tuned TVM schedule) ---

func traceAnsor(s conv.Shape) func(h *Hierarchy) {
	c := min(s.C, winChans)
	return func(h *Hierarchy) {
		for oh := 0; oh < winRows; oh++ {
			for tile := 0; tile < winTiles; tile++ {
				ow0 := tile * 12
				for kk := 0; kk < kReps; kk++ {
					for cc := 0; cc < c; cc++ {
						inBase := (cc*s.H+oh*s.Str)*s.W + ow0*s.Str
						for r := 0; r < s.R; r++ {
							for ss := 0; ss < s.S; ss++ {
								// Unpacked strided input: three vector
								// loads straight from NCHW.
								vecRange(h, baseInput, inBase+r*s.W+ss, 12)
								h.Access(addr4(baseFilter, ((kk*s.C+cc)*s.R+r)*s.S+ss))
							}
						}
					}
					vecRange(h, baseOutput, (kk*s.P()+oh)*s.Q()+ow0, 12)
					vecRangeW(h, baseOutput, (kk*s.P()+oh)*s.Q()+ow0, 12)
				}
			}
		}
	}
}

func traceAnsorFlops(s conv.Shape) int64 {
	c := min(s.C, winChans)
	return int64(winRows*winTiles*kReps) * int64(c*s.R*s.S) * int64(2*12)
}
