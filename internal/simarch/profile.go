package simarch

import (
	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/model"
)

// Address-space bases keep the traced regions (input, filters, packed
// buffers, output, lowered matrix) from aliasing in the cache
// simulator.
const (
	baseInput    = 0x0000_0000_0000
	baseFilter   = 0x1000_0000_0000
	basePackBuf  = 0x2000_0000_0000
	baseTFilter  = 0x3000_0000_0000
	baseOutput   = 0x4000_0000_0000
	baseMatrix   = 0x5000_0000_0000
	baseIndirect = 0x6000_0000_0000
)

const vecBytes = 16 // one 128-bit vector access

// Profile captures everything the estimator needs about one
// (algorithm, layer, platform) combination: aggregate instruction
// counts, DRAM traffic, parallelisation shape and a representative
// memory trace window.
type Profile struct {
	Name  string
	Shape conv.Shape
	Flops int64

	VecFMAs   int64 // 4-lane FMA instructions
	VecLoads  int64 // L1 vector loads in the steady-state kernel
	VecStores int64
	// SerialVecOps are memory operations of stages that do not
	// overlap compute (im2col lowering, sequential packing, layout
	// conversions when charged).
	SerialVecOps int64
	// ChainAccs is the number of independent accumulator registers —
	// the FMA-latency-hiding depth of the kernel.
	ChainAccs int

	MemBytes int64 // DRAM traffic (analytical, whole problem)

	// Tasks is the number of independent parallel work items the
	// algorithm's strategy exposes (its thread-grid capacity).
	Tasks int

	// Trace replays a representative window of the kernel's memory
	// accesses; TraceFlops is the FLOP count that window represents.
	Trace      func(h *Hierarchy)
	TraceFlops int64
}

// loadBalance returns the utilisation of `threads` workers over
// `tasks` equal work items under static partitioning.
func loadBalance(tasks, threads int) float64 {
	if tasks <= 0 || threads <= 0 {
		return 1
	}
	if tasks < threads {
		return float64(tasks) / float64(threads)
	}
	chunks := (tasks + threads - 1) / threads
	return float64(tasks) / float64(chunks*threads)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ProfileNDirect models the nDirect plan on the platform: Equation
// 3–4 register tile, Equation 1–2 cache tiles, §6 thread mapping.
// seqPack charges the packing micro-kernel as a serial stage
// (Figure 5's ablated baseline) instead of overlapping it.
func ProfileNDirect(s conv.Shape, p hw.Platform, threads int, seqPack bool) Profile {
	rt := model.SolveRegisterTile(s.S, s.Str)
	ct := model.SolveCacheTiles(p, s, rt)
	tm := model.SolveThreadMapping(s, p.Alpha, threads, rt.Vk)
	flops := s.FLOPs()
	wIn := (rt.Vw-1)*s.Str + s.S

	// One L9 iteration: ceil((wIn)/4) input + S·Vk/4 filter vector
	// loads feed S·Vw·Vk/4 vector FMAs.
	inLoads := int64(ceilDiv(wIn, 4))
	fLoads := int64(s.S * rt.Vk / 4)
	vecFMAs := flops / 8
	iters := flops / int64(2*s.S*rt.Vw*rt.Vk/s.Str)
	if iters < 1 {
		iters = 1
	}
	cPasses := ceilDiv(s.C, ct.Tc)
	// Output register tile store (and reload on later channel passes).
	outVecs := s.OutputBytes() / vecBytes
	vecStores := outVecs * int64(cPasses)
	vecLoads := iters*(inLoads+fLoads) + outVecs*int64(cPasses-1)

	// Packing ops: each packed element written once per (ct, kt) pass
	// of each tile. Overlapped mode hides them in the FMA stream;
	// sequential mode issues them as a separate pass (read + write).
	kPerWorker := ceilDiv(ceilDiv(s.K, tm.PTk), rt.Vk) * rt.Vk
	ktPasses := ceilDiv(kPerWorker, ct.Tk)
	packedFloats := int64(s.N) * int64(s.P()) * int64(ceilDiv(s.Q(), rt.Vw)) *
		int64(ct.Tc*s.R*wIn) * int64(cPasses*ktPasses)
	var serialOps int64
	if seqPack {
		serialOps = 2 * packedFloats / 4
	}

	// DRAM traffic: input re-read per kt pass; filter duplicated per
	// PTn worker; output read+written per channel pass.
	mem := s.InputBytes()*int64(ktPasses) +
		s.FilterBytes()*int64(tm.PTn) +
		s.OutputBytes()*int64(2*cPasses-1)

	return Profile{
		Name:         "nDirect",
		Shape:        s,
		Flops:        flops,
		VecFMAs:      vecFMAs,
		VecLoads:     vecLoads,
		VecStores:    vecStores,
		SerialVecOps: serialOps,
		ChainAccs:    rt.Vw * rt.Vk / 4,
		MemBytes:     mem,
		Tasks:        tm.PTk * tm.PTn,
		Trace:        traceNDirect(s, rt, ct),
		TraceFlops:   traceNDirectFlops(s, rt, ct),
	}
}

// ProfileIm2colGEMM models the im2col+OpenBLAS baseline: the lowering
// pass duplicates the input R·S-fold in memory, the packing stages
// stream it again, and the 8×12 GEMM micro-kernel runs at its own
// intensity.
func ProfileIm2colGEMM(s conv.Shape, p hw.Platform, threads int) Profile {
	flops := s.FLOPs()
	vecFMAs := flops / 8
	// Per k-step of one 8×12 tile: 3 B-vec + 2 A-vec loads for 24
	// vector FMAs.
	vecLoads := vecFMAs * 5 / 24
	matrixBytes := int64(0)
	var serialOps int64
	if im2colNeeded(s) {
		matrixBytes = 4 * int64(s.N) * int64(s.C*s.R*s.S) * int64(s.P()*s.Q())
		// Lowering: read input, write matrix. GEMM packing re-reads
		// the matrix and filter and writes panels.
		serialOps = (s.InputBytes() + 2*matrixBytes + s.FilterBytes()) / vecBytes
	} else {
		serialOps = (s.InputBytes() + s.FilterBytes()) / vecBytes
	}
	mem := s.InputBytes() + 2*matrixBytes + s.FilterBytes()*int64(threads/max(1, min(s.N, threads))+1) + s.OutputBytes()
	return Profile{
		Name:         "im2col+GEMM",
		Shape:        s,
		Flops:        flops,
		VecFMAs:      vecFMAs,
		VecLoads:     vecLoads,
		VecStores:    s.OutputBytes() / vecBytes,
		SerialVecOps: serialOps,
		ChainAccs:    24,
		MemBytes:     mem,
		Tasks:        threads, // batch + intra-GEMM splitting composes freely
		Trace:        traceGEMM(s),
		TraceFlops:   traceGEMMFlops(s),
	}
}

// ProfileXSMM models the LIBXSMM-style BRGEMM kernel (layout
// conversions excluded, the Figure 4 configuration; pass
// includeConvert for the Figure 1a configuration).
func ProfileXSMM(s conv.Shape, p hw.Platform, threads int, includeConvert bool) Profile {
	flops := s.FLOPs()
	vecFMAs := flops / 8
	// Per output column per channel lane: 2 filter vector loads are
	// re-issued (the "sequential load" pattern §3.2 critiques) plus
	// the input scalar — 2.25 vector-equivalent loads per 2 vector
	// FMAs.
	vecLoads := vecFMAs * 9 / 8
	var serialOps int64
	mem := s.InputBytes() + s.FilterBytes() + s.OutputBytes()
	if includeConvert {
		serialOps = (2*s.InputBytes() + 2*s.FilterBytes() + 2*s.OutputBytes()) / vecBytes
		mem += 2*s.InputBytes() + s.FilterBytes() + s.OutputBytes()
	}
	kBlocks := ceilDiv(s.K, 8)
	return Profile{
		Name:         "LIBXSMM",
		Shape:        s,
		Flops:        flops,
		VecFMAs:      vecFMAs,
		VecLoads:     vecLoads,
		VecStores:    s.OutputBytes() / vecBytes,
		SerialVecOps: serialOps,
		ChainAccs:    12,
		MemBytes:     mem,
		Tasks:        s.N * kBlocks,
		Trace:        traceXSMM(s),
		TraceFlops:   traceXSMMFlops(s),
	}
}

// ProfileXNN models the XNNPACK indirect convolution.
func ProfileXNN(s conv.Shape, p hw.Platform, threads int) Profile {
	flops := s.FLOPs()
	vecFMAs := flops / 8
	// Per channel per tap per 4-pixel tile: 2 filter vecs + 1
	// vec-equivalent of gathered scalars per 8 vector FMAs, plus the
	// indirection pointer loads.
	vecLoads := vecFMAs*3/8 + int64(s.N*s.P()*s.Q()*s.R*s.S)/4
	return Profile{
		Name:       "XNNPACK",
		Shape:      s,
		Flops:      flops,
		VecFMAs:    vecFMAs,
		VecLoads:   vecLoads,
		VecStores:  s.OutputBytes() / vecBytes,
		ChainAccs:  8,
		MemBytes:   s.InputBytes() + s.FilterBytes() + s.OutputBytes(),
		Tasks:      s.N * s.P(),
		Trace:      traceXNN(s),
		TraceFlops: traceXNNFlops(s),
	}
}

// ProfileACLDirect models the motivation baseline: K-only
// parallelism, serial batch loop, single accumulator chain, no
// blocking — each output channel re-reads the whole input.
func ProfileACLDirect(s conv.Shape, p hw.Platform, threads int) Profile {
	flops := s.FLOPs()
	return Profile{
		Name:       "ACL_DIRECT",
		Shape:      s,
		Flops:      flops,
		VecFMAs:    flops / 8,
		VecLoads:   flops / 8 * 5 / 4, // one input vec + scalar filter per vec FMA, plus reload churn
		VecStores:  s.OutputBytes() / vecBytes,
		ChainAccs:  1, // the latency-bound chain
		MemBytes:   s.InputBytes()*int64(min(s.K, 16)) + s.FilterBytes() + s.OutputBytes(),
		Tasks:      min(s.K, threads), // batch is serial: K is the only axis
		Trace:      traceACL(s),
		TraceFlops: traceACLFlops(s),
	}
}

// ProfileAnsor models the tuned TVM-style schedule: vectorised over
// output columns with a two-row unrolled register tile (the depth a
// converged search finds), but no packing — input reads stay strided
// NCHW — and no filter re-blocking, the structural gap Figure 6
// measures.
func ProfileAnsor(s conv.Shape, p hw.Platform, threads int) Profile {
	flops := s.FLOPs()
	vecFMAs := flops / 8
	if s.R == 1 && s.S == 1 {
		// A tuned 1×1 convolution schedule is effectively a GEMM
		// (the paper's layers 19/20 observation applies to the
		// compiler too) — but over unpacked, strided operands, which
		// costs roughly one extra load per FMA relative to the
		// packed-panel Goto kernel.
		prof := ProfileIm2colGEMM(s, p, threads)
		prof.Name = "Ansor"
		prof.SerialVecOps = 0 // no lowering stage, fused pipeline
		prof.ChainAccs = 8
		prof.VecLoads = vecFMAs * 4 / 3
		return prof
	}
	// Per tap per 12-wide column group: 3 input vector loads + 1
	// scalar filter load for 3 vector FMAs.
	vecLoads := vecFMAs * 4 / 3
	return Profile{
		Name:       "Ansor",
		Shape:      s,
		Flops:      flops,
		VecFMAs:    vecFMAs,
		VecLoads:   vecLoads,
		VecStores:  s.OutputBytes() / vecBytes * int64(ceilDiv(s.C, 16)),
		ChainAccs:  8,
		MemBytes:   s.InputBytes() + s.FilterBytes()*int64(min(threads, 8)) + 2*s.OutputBytes(),
		Tasks:      threads,
		Trace:      traceAnsor(s),
		TraceFlops: traceAnsorFlops(s),
	}
}

// ProfileACLGEMM models the ACL_GEMM motivation baseline: im2col
// lowering feeding an unblocked scalar GEMM parallelised over K only.
func ProfileACLGEMM(s conv.Shape, p hw.Platform, threads int) Profile {
	prof := ProfileIm2colGEMM(s, p, threads)
	prof.Name = "ACL_GEMM"
	// Scalar triple loop: one FLOP pair per scalar FMA — an 8×
	// vector-width handicap expressed as extra FMA issue slots.
	prof.VecFMAs = prof.Flops / 2
	prof.VecLoads = prof.Flops // two scalar loads per scalar FMA
	prof.ChainAccs = 1
	prof.Tasks = min(s.K, threads)
	return prof
}

func im2colNeeded(s conv.Shape) bool {
	return !(s.R == 1 && s.S == 1 && s.Str == 1 && s.Pad == 0)
}
