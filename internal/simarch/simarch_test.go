package simarch

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
)

func TestCacheSimBasicHitMiss(t *testing.T) {
	c := NewCacheSim(hw.Cache{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: hw.LRU})
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) || !c.Access(32) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheSimLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 8 sets (1KB): lines 0, 512, 1024 map to set 0.
	c := NewCacheSim(hw.Cache{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: hw.LRU})
	c.Access(0)
	c.Access(512)
	c.Access(0)    // 0 is now MRU
	c.Access(1024) // evicts 512 (LRU)
	if !c.Access(0) {
		t.Fatal("0 must survive (MRU)")
	}
	if c.Access(512) {
		t.Fatal("512 must have been evicted")
	}
}

func TestCacheSimCapacityWorkingSet(t *testing.T) {
	// A working set within capacity must re-hit on the second pass.
	c := NewCacheSim(hw.Cache{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, Policy: hw.LRU})
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	// Second pass: all hits -> overall miss ratio 0.5 (first pass all
	// misses).
	if r := c.MissRatio(); r != 0.5 {
		t.Fatalf("miss ratio %v, want 0.5", r)
	}
}

func TestCacheSimPseudoRandomWorseThanLRUOnReuse(t *testing.T) {
	// Loop over a working set slightly larger than capacity: LRU
	// thrashes fully; pseudo-random keeps some lines by luck. Either
	// way both must be deterministic and pseudo-random must differ
	// from LRU.
	run := func(policy hw.ReplacementPolicy) float64 {
		c := NewCacheSim(hw.Cache{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Policy: policy})
		for pass := 0; pass < 4; pass++ {
			for a := uint64(0); a < 10<<10; a += 64 {
				c.Access(a)
			}
		}
		return c.MissRatio()
	}
	lru := run(hw.LRU)
	pr := run(hw.PseudoRandom)
	if lru != 1.0 {
		t.Fatalf("LRU must fully thrash a cyclic overflow (got %v)", lru)
	}
	if pr >= lru {
		t.Fatalf("pseudo-random (%v) should beat LRU (%v) on cyclic overflow", pr, lru)
	}
	if pr2 := run(hw.PseudoRandom); pr2 != pr {
		t.Fatal("pseudo-random policy must be deterministic")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(hw.KP920)
	if h.L3 == nil {
		t.Fatal("KP920 hierarchy must have an L3")
	}
	lvl := h.Access(0)
	if lvl != 4 {
		t.Fatalf("cold access must go to memory, got level %d", lvl)
	}
	if h.Access(0) != 1 {
		t.Fatal("second access must hit L1")
	}
	if h.Accesses() != 2 {
		t.Fatal("access count wrong")
	}
	// Phytium has no L3: misses past L2 go straight to memory.
	h2 := NewHierarchy(hw.Phytium2000)
	if h2.L3 != nil {
		t.Fatal("Phytium hierarchy must have no L3")
	}
	if h2.Access(0) != 4 {
		t.Fatal("cold access must be memory on Phytium")
	}
}

func TestHierarchySharedLevelShrunk(t *testing.T) {
	// Phytium's 2MB L2 shared by 4 -> per-core 512KB simulator.
	h := NewHierarchy(hw.Phytium2000)
	// 512KB = 8192 lines; touching 1MB cyclically must thrash L2.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1<<20; a += 64 {
			h.Access(a)
		}
	}
	if h.L2Hits > int64(1<<20/64/4) {
		t.Fatalf("shared-shrunk L2 should mostly miss a 1MB cyclic set, hits=%d", h.L2Hits)
	}
}

func layerShape(t *testing.T, id int, p hw.Platform) conv.Shape {
	t.Helper()
	l, ok := conv.LayerByID(id)
	if !ok {
		t.Fatalf("layer %d missing", id)
	}
	return l.Shape.WithBatch(p.Cores)
}

// allProfiles builds the standard competitor set for one layer and
// platform.
func allProfiles(s conv.Shape, p hw.Platform) []Profile {
	return []Profile{
		ProfileNDirect(s, p, p.Cores, false),
		ProfileXSMM(s, p, p.Cores, false),
		ProfileIm2colGEMM(s, p, p.Cores),
		ProfileXNN(s, p, p.Cores),
		ProfileAnsor(s, p, p.Cores),
		ProfileACLDirect(s, p, p.Cores),
	}
}

func TestProjectionsWithinPhysicalLimits(t *testing.T) {
	for _, p := range hw.Platforms {
		for _, id := range []int{1, 3, 5, 17, 24} {
			s := layerShape(t, id, p)
			for _, prof := range allProfiles(s, p) {
				proj := Estimate(p, p.Cores, prof)
				if proj.GFLOPS <= 0 {
					t.Fatalf("%s/%s layer %d: non-positive GFLOPS", p.Name, prof.Name, id)
				}
				if proj.PctPeak > 1.0 {
					t.Fatalf("%s/%s layer %d: %v exceeds peak", p.Name, prof.Name, id, proj)
				}
			}
		}
	}
}

// The headline result: nDirect wins every 3×3 stride-1 layer on every
// HPC platform against every baseline (Figure 4's ordering).
func TestNDirectWinsPerLayer(t *testing.T) {
	for _, p := range []hw.Platform{hw.Phytium2000, hw.KP920, hw.ThunderX2} {
		for _, id := range []int{3, 10, 16, 24, 25, 26, 27, 28} {
			s := layerShape(t, id, p)
			profs := allProfiles(s, p)
			nd := Estimate(p, p.Cores, profs[0])
			for _, prof := range profs[1:] {
				other := Estimate(p, p.Cores, prof)
				if other.GFLOPS >= nd.GFLOPS {
					t.Errorf("%s layer %d: %s (%.0f GF) >= nDirect (%.0f GF)",
						p.Name, id, prof.Name, other.GFLOPS, nd.GFLOPS)
				}
			}
		}
	}
}

// §8.1: nDirect reaches 70–80%+ of peak on stride-1 3×3 layers and
// loses efficiency on stride-2 layers.
func TestNDirectEfficiencyBands(t *testing.T) {
	p := hw.Phytium2000
	s3 := layerShape(t, 3, p) // 3x3 stride 1
	proj := Estimate(p, p.Cores, ProfileNDirect(s3, p, p.Cores, false))
	if proj.PctPeak < 0.6 || proj.PctPeak > 0.95 {
		t.Fatalf("3x3 s1 efficiency %.2f outside the paper's 70-80%% band (±10)", proj.PctPeak)
	}
	s2 := layerShape(t, 2, p) // 3x3 stride 2
	proj2 := Estimate(p, p.Cores, ProfileNDirect(s2, p, p.Cores, false))
	if proj2.PctPeak >= proj.PctPeak {
		t.Fatalf("stride-2 (%.2f) must be below stride-1 (%.2f)", proj2.PctPeak, proj.PctPeak)
	}
}

// Figure 5: sequential packing must be slower than overlapped packing,
// and the gap must be larger on the pseudo-random-replacement Phytium
// than on an LRU platform... at minimum, positive everywhere.
func TestPackingOverlapBenefit(t *testing.T) {
	for _, p := range []hw.Platform{hw.Phytium2000, hw.KP920, hw.ThunderX2} {
		for _, id := range []int{24, 25, 26, 27, 28} {
			s := layerShape(t, id, p)
			over := Estimate(p, p.Cores, ProfileNDirect(s, p, p.Cores, false))
			seq := Estimate(p, p.Cores, ProfileNDirect(s, p, p.Cores, true))
			if seq.GFLOPS >= over.GFLOPS {
				t.Errorf("%s layer %d: sequential pack (%.0f) not slower than overlapped (%.0f)",
					p.Name, id, seq.GFLOPS, over.GFLOPS)
			}
		}
	}
}

// The motivation result: ACL-style K-only parallelism is the worst
// strategy on the 64-core machine (Figure 1b).
func TestACLWorstOnManyCore(t *testing.T) {
	p := hw.Phytium2000
	for _, id := range []int{3, 5, 10} {
		s := layerShape(t, id, p)
		profs := allProfiles(s, p)
		acl := Estimate(p, p.Cores, profs[len(profs)-1])
		for _, prof := range profs[:len(profs)-1] {
			if Estimate(p, p.Cores, prof).GFLOPS <= acl.GFLOPS {
				t.Errorf("layer %d: %s not faster than ACL_DIRECT", id, prof.Name)
			}
		}
	}
}

// Single-threaded projections must be slower than full-machine ones
// (parallel scaling sanity).
func TestThreadScaling(t *testing.T) {
	p := hw.KP920
	s := layerShape(t, 3, p)
	one := Estimate(p, 1, ProfileNDirect(s, p, 1, false))
	all := Estimate(p, p.Cores, ProfileNDirect(s, p, p.Cores, false))
	if all.GFLOPS < 10*one.GFLOPS {
		t.Fatalf("64-core projection (%.0f) should be ≫ 1-core (%.0f)", all.GFLOPS, one.GFLOPS)
	}
	if one.GFLOPS > p.PerCorePeakGFLOPS() {
		t.Fatalf("1-core projection %.1f exceeds per-core peak %.1f", one.GFLOPS, p.PerCorePeakGFLOPS())
	}
}

// Log the Figure 4-style projection table for inspection.
func TestProjectionTableLog(t *testing.T) {
	p := hw.Phytium2000
	for _, id := range []int{1, 3, 5, 17, 24} {
		s := layerShape(t, id, p)
		for _, prof := range allProfiles(s, p) {
			proj := Estimate(p, p.Cores, prof)
			t.Logf("layer %2d %-12s %8.1f GF %5.1f%% %s", id, prof.Name, proj.GFLOPS, proj.PctPeak*100, proj.Bound)
		}
	}
}

func TestACLGEMMMatchesMotivation(t *testing.T) {
	// Figure 1b's ACL_GEMM sits at ~5% of peak on the 64-core machine:
	// scalar kernel + K-only parallelism.
	p := hw.Phytium2000
	s := layerShape(t, 3, p)
	proj := Estimate(p, p.Cores, ProfileACLGEMM(s, p, p.Cores))
	if proj.PctPeak < 0.02 || proj.PctPeak > 0.12 {
		t.Fatalf("ACL_GEMM at %.1f%% of peak, want ~5%%", proj.PctPeak*100)
	}
}

func TestSMTProjectionsBounded(t *testing.T) {
	// Figure 9: 128 SMT threads on 32 physical cores must never
	// project above the machine's peak.
	p := hw.ThunderX2
	logical := p.LogicalCores()
	for _, id := range []int{1, 3, 5, 17} {
		s := layerShape(t, id, p).WithBatch(logical)
		for _, prof := range []Profile{
			ProfileNDirect(s, p, logical, false),
			ProfileXSMM(s, p, logical, false),
			ProfileXNN(s, p, logical),
			ProfileIm2colGEMM(s, p, logical),
		} {
			proj := Estimate(p, logical, prof)
			if proj.PctPeak > 1.0 {
				t.Fatalf("%s layer %d at SMT4: %.0f%% of peak", prof.Name, id, proj.PctPeak*100)
			}
		}
	}
}

func TestSMTHelpsChainLimitedKernels(t *testing.T) {
	// §8.5's mechanism: SMT interleaves independent chains, so a
	// chain-limited kernel gains more from 128 threads than a
	// chain-rich one. Compare XNNPACK (8 accumulators) speedup vs
	// nDirect (24 accumulators) when going 32 -> 128 threads.
	p := hw.ThunderX2
	s := layerShape(t, 3, p).WithBatch(128)
	gain := func(build func(threads int) Profile) float64 {
		base := Estimate(p, p.Cores, build(p.Cores))
		smt := Estimate(p, p.LogicalCores(), build(p.LogicalCores()))
		return smt.GFLOPS / base.GFLOPS
	}
	xnnGain := gain(func(th int) Profile { return ProfileXNN(s, p, th) })
	ndGain := gain(func(th int) Profile { return ProfileNDirect(s, p, th, false) })
	if xnnGain < ndGain {
		t.Fatalf("XNNPACK SMT gain (%.2f) should be at least nDirect's (%.2f)", xnnGain, ndGain)
	}
}

func TestAnsor1x1TreatedAsGEMM(t *testing.T) {
	// A tuned 1x1 schedule converges near GEMM behaviour: the Ansor
	// projection for a 1x1 layer must land within 2x of im2col+GEMM
	// and far above its own 3x3-style strided regime.
	p := hw.Phytium2000
	s := layerShape(t, 5, p) // 1x1 stride 1
	an := Estimate(p, p.Cores, ProfileAnsor(s, p, p.Cores))
	gm := Estimate(p, p.Cores, ProfileIm2colGEMM(s, p, p.Cores))
	ratio := gm.GFLOPS / an.GFLOPS
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("Ansor 1x1 (%.0f GF) too far from GEMM (%.0f GF)", an.GFLOPS, gm.GFLOPS)
	}
}

func TestProfilesCoverEveryTable4Layer(t *testing.T) {
	// Robustness: every profile builder handles all 28 layers on all
	// platforms without degenerate output.
	for _, p := range hw.Platforms {
		for _, l := range conv.Table4 {
			s := l.Shape.WithBatch(p.Cores)
			for _, prof := range []Profile{
				ProfileNDirect(s, p, p.Cores, false),
				ProfileNDirect(s, p, p.Cores, true),
				ProfileIm2colGEMM(s, p, p.Cores),
				ProfileXSMM(s, p, p.Cores, true),
				ProfileXNN(s, p, p.Cores),
				ProfileACLDirect(s, p, p.Cores),
				ProfileACLGEMM(s, p, p.Cores),
				ProfileAnsor(s, p, p.Cores),
			} {
				if prof.Flops != s.FLOPs() || prof.VecFMAs <= 0 || prof.Tasks <= 0 {
					t.Fatalf("%s/%s layer %d: degenerate profile", p.Name, prof.Name, l.ID)
				}
				proj := Estimate(p, p.Cores, prof)
				if proj.GFLOPS <= 0 || proj.PctPeak > 1 {
					t.Fatalf("%s/%s layer %d: bad projection %+v", p.Name, prof.Name, l.ID, proj)
				}
			}
		}
	}
}
