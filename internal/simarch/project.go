package simarch

import (
	"fmt"

	"ndirect/internal/hw"
)

// bwEff is the achievable fraction of the Table-3 nominal memory
// bandwidth under a full-machine streaming workload (the usual
// STREAM-vs-datasheet ratio).
const bwEff = 0.6

// mlpOverlap returns the fraction of cache-miss latency the core's
// out-of-order window hides. Aggressive OoO server cores (KP920's
// TaiShan V110, ThunderX2's Vulcan) hide most of it; Phytium 2000+'s
// simpler FTC662 core and the RPi 4's Cortex-A72 hide less.
func mlpOverlap(p hw.Platform) float64 {
	switch p.Name {
	case "KP920", "ThunderX2":
		return 0.8
	case "Phytium 2000+":
		return 0.5
	case "RPi 4":
		return 0.6
	}
	return 0.7
}

// Projection is the machine model's estimate of one algorithm's
// performance on one platform.
type Projection struct {
	Name    string
	Seconds float64
	GFLOPS  float64
	PctPeak float64
	// Bound names the limiting resource: "fma", "load", "latency",
	// "memory" or "serial".
	Bound string
	// StallCyclesPerFlop is the simulated cache-stall density.
	StallCyclesPerFlop float64
	// L1MissRatio is the traced L1 miss ratio.
	L1MissRatio float64
}

func (pr Projection) String() string {
	return fmt.Sprintf("%s: %.1f GFLOPS (%.0f%% of peak, %s-bound)",
		pr.Name, pr.GFLOPS, pr.PctPeak*100, pr.Bound)
}

// Estimate projects the profile onto the platform with `threads`
// worker threads. The model composes:
//
//   - issue pressure: vector FMAs through the FMA pipes vs memory
//     instructions through the load pipes (whichever is larger), with
//     the FMA stream stretched when the accumulator chain is shorter
//     than FMAPipes × FMALatency (the register-tile depth argument of
//     §5.2);
//   - cache stalls: the traced window's per-level miss counts priced
//     at the level-to-level latency deltas, discounted by the core's
//     latency-hiding factor, and scaled from the window to the whole
//     problem;
//   - serial stages: non-overlapped memory passes (im2col lowering,
//     sequential packing, layout conversions) charged at the load
//     pipes plus their own streaming-bandwidth floor;
//   - parallel shape: each algorithm's task grid and its static
//     load balance over the requested threads;
//   - bandwidth roof: total DRAM traffic against the achievable
//     machine bandwidth.
func Estimate(p hw.Platform, threads int, prof Profile) Projection {
	freqHz := p.FreqGHz * 1e9
	if threads <= 0 {
		threads = p.Cores
	}

	// Parallel shape. Compute throughput cannot exceed the physical
	// cores; SMT threads (threads > Cores, the Figure 9 experiment)
	// add latency hiding, not issue slots.
	workers := min(threads, max(1, prof.Tasks))
	physWorkers := min(workers, p.Cores)
	smtWays := (workers + p.Cores - 1) / p.Cores
	balance := loadBalance(prof.Tasks, workers)
	issueSpeedup := float64(physWorkers) * balance
	stallSpeedup := float64(workers) * balance
	if issueSpeedup < 1 {
		issueSpeedup = 1
	}
	if stallSpeedup < 1 {
		stallSpeedup = 1
	}

	// Issue model. SMT co-resident threads interleave independent
	// accumulator chains, multiplying the effective chain depth.
	chainNeed := p.FMAPipes * p.FMALatency
	chainEff := 1.0
	if prof.ChainAccs > 0 && prof.ChainAccs*smtWays < chainNeed {
		chainEff = float64(prof.ChainAccs*smtWays) / float64(chainNeed)
	}
	fmaCycles := float64(prof.VecFMAs) / float64(p.FMAPipes) / chainEff
	ldCycles := float64(prof.VecLoads+prof.VecStores) / float64(p.LoadPipes)
	issueCycles := fmaCycles
	bound := "fma"
	if ldCycles > issueCycles {
		issueCycles = ldCycles
		bound = "load"
	}
	if chainEff < 1 && fmaCycles >= ldCycles {
		bound = "latency"
	}

	// Cache-stall model from the trace window.
	var stallPerFlop, l1Miss float64
	if prof.Trace != nil && prof.TraceFlops > 0 {
		h := NewHierarchy(p)
		prof.Trace(h) // warm-up pass fills the caches
		h2 := NewHierarchy(p)
		prof.Trace(h2)
		h = h2
		l1Lat := float64(p.L1.LatencyCycles)
		l2Pen := float64(p.L2.LatencyCycles) - l1Lat
		lastLat := float64(p.L2.LatencyCycles)
		l3Pen := 0.0
		if p.L3.Exists() {
			l3Pen = float64(p.L3.LatencyCycles) - float64(p.L2.LatencyCycles)
			lastLat = float64(p.L3.LatencyCycles)
		}
		_ = lastLat
		// Stride-prefetched stream misses cost a fraction of the
		// demand penalty; the remainder are demand misses at the full
		// level-to-level latency delta.
		const prefetchResidual = 0.15
		weight := func(total, seq int64) float64 {
			return float64(total-seq) + float64(seq)*prefetchResidual
		}
		raw := weight(h.L2Hits, h.SeqL2)*l2Pen +
			weight(h.L3Hits, h.SeqL3)*(l2Pen+l3Pen) +
			weight(h.Mem, h.SeqMem)*(float64(p.MemLatencyCycles)-l1Lat)
		stallPerFlop = raw * (1 - mlpOverlap(p)) / float64(prof.TraceFlops)
		if h.L1 != nil {
			l1Miss = h.L1.MissRatio()
		}
	}
	stallCycles := stallPerFlop * float64(prof.Flops)

	kernelSec := issueCycles/freqHz/issueSpeedup + stallCycles/freqHz/stallSpeedup

	// Kernel-phase bandwidth roof.
	bwBytes := p.BandwidthGiBs * bwEff * (1 << 30)
	memSec := float64(prof.MemBytes) / bwBytes
	if memSec > kernelSec {
		kernelSec = memSec
		bound = "memory"
	}

	// Serial stages (issue-side and bandwidth-side floors).
	serialSec := 0.0
	if prof.SerialVecOps > 0 {
		issueSide := float64(prof.SerialVecOps) / float64(p.LoadPipes) / freqHz / float64(threads)
		bwSide := float64(prof.SerialVecOps) * vecBytes / bwBytes
		serialSec = issueSide
		if bwSide > serialSec {
			serialSec = bwSide
		}
		if serialSec > kernelSec {
			bound = "serial"
		}
	}

	total := kernelSec + serialSec
	gflops := float64(prof.Flops) / total / 1e9
	return Projection{
		Name:               prof.Name,
		Seconds:            total,
		GFLOPS:             gflops,
		PctPeak:            gflops / p.PeakGFLOPS,
		Bound:              bound,
		StallCyclesPerFlop: stallPerFlop,
		L1MissRatio:        l1Miss,
	}
}
