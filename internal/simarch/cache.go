// Package simarch is the machine model that substitutes for the
// paper's four ARM testbeds (see DESIGN.md §1): it projects a
// convolution algorithm's execution onto an hw.Platform and returns
// modeled GFLOPS / %-of-peak figures.
//
// The model has two parts:
//
//   - a trace-driven set-associative cache simulator (this file),
//     which replays a representative window of the algorithm's memory
//     access stream through the platform's L1/L2/L3 hierarchy with
//     the platform's replacement policy (LRU or pseudo-random — the
//     distinction the paper uses to explain Figure 5's cross-platform
//     differences), yielding per-level miss counts;
//   - an analytical cycle estimator (project.go) in the ECM/roofline
//     family, combining FMA/load issue pressure, the simulated cache
//     stalls, accumulator-chain latency limits, memory bandwidth and
//     each algorithm's parallelisation shape.
package simarch

import "ndirect/internal/hw"

// CacheSim is one set-associative cache level with LRU or
// pseudo-random replacement (deterministic xorshift so projections
// are reproducible).
type CacheSim struct {
	sets      int
	ways      int
	lineShift uint
	policy    hw.ReplacementPolicy

	tags  []uint64 // sets × ways; 0 = empty (tags are shifted-up addrs, never 0 for real lines)
	stamp []uint64 // LRU timestamps
	clock uint64
	rng   uint64

	Hits, Misses int64
}

// NewCacheSim builds a simulator for the given cache geometry. A
// zero-size cache returns nil (missing level).
func NewCacheSim(c hw.Cache) *CacheSim {
	if !c.Exists() {
		return nil
	}
	line := c.LineBytes
	if line == 0 {
		line = 64
	}
	ways := c.Ways
	if ways <= 0 {
		ways = 8
	}
	sets := c.SizeBytes / line / ways
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for fast indexing.
	for sets&(sets-1) != 0 {
		sets &^= sets & -sets
	}
	shift := uint(0)
	for 1<<shift < line {
		shift++
	}
	return &CacheSim{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		policy:    c.Policy,
		tags:      make([]uint64, sets*ways),
		stamp:     make([]uint64, sets*ways),
		rng:       0x9e3779b97f4a7c15,
	}
}

// Access touches addr; returns true on hit. On miss the line is
// filled, evicting per the policy.
func (c *CacheSim) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	tag := line + 1 // +1 so tag 0 means "empty"
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.Hits++
			c.stamp[base+w] = c.clock
			return true
		}
	}
	c.Misses++
	// Choose a victim: empty way first, else policy.
	victim := -1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = w
			break
		}
	}
	if victim < 0 {
		if c.policy == hw.PseudoRandom {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(c.ways))
		} else { // LRU
			oldest := c.stamp[base]
			victim = 0
			for w := 1; w < c.ways; w++ {
				if c.stamp[base+w] < oldest {
					oldest = c.stamp[base+w]
					victim = w
				}
			}
		}
	}
	c.tags[base+victim] = tag
	c.stamp[base+victim] = c.clock
	return false
}

// MissRatio returns misses / accesses.
func (c *CacheSim) MissRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Hierarchy chains the per-core view of a platform's cache levels:
// shared levels are shrunk to the per-core share, modelling steady
// state under full-machine load.
type Hierarchy struct {
	L1, L2, L3 *CacheSim
	// Per-level service counts (an access is serviced by the first
	// level that hits; Mem counts DRAM accesses).
	L1Hits, L2Hits, L3Hits, Mem int64
	// SeqL2/SeqL3/SeqMem count the subset of the above misses that
	// continue a unit-stride line stream within one address region —
	// the pattern the hardware stride prefetcher hides. The
	// estimator prices these at a fraction of the demand-miss
	// penalty.
	SeqL2, SeqL3, SeqMem int64

	lastLine map[uint64]uint64
}

// NewHierarchy builds the per-core hierarchy for a platform.
func NewHierarchy(p hw.Platform) *Hierarchy {
	l2 := p.L2
	if l2.Shared && l2.SharedBy > 1 {
		l2.SizeBytes /= l2.SharedBy
	}
	l3 := p.L3
	if l3.Exists() && l3.Shared && l3.SharedBy > 1 {
		l3.SizeBytes /= l3.SharedBy
	}
	return &Hierarchy{
		L1:       NewCacheSim(p.L1),
		L2:       NewCacheSim(l2),
		L3:       NewCacheSim(l3),
		lastLine: make(map[uint64]uint64),
	}
}

// Access replays one load; returns the level that serviced it
// (1, 2, 3, or 4 for memory).
func (h *Hierarchy) Access(addr uint64) int {
	return h.touch(addr, false)
}

// Write replays one store. Stores allocate and update the cache state
// but are not charged as stalls by the estimator: store buffers and
// write-combining hide their miss latency from the pipeline.
func (h *Hierarchy) Write(addr uint64) {
	h.touch(addr, true)
}

func (h *Hierarchy) touch(addr uint64, write bool) int {
	line := addr >> 6
	region := addr >> 44
	prev, seen := h.lastLine[region]
	seq := seen && (line == prev+1 || line == prev)
	h.lastLine[region] = line

	if h.L1.Access(addr) {
		h.L1Hits++
		return 1
	}
	if h.L2 != nil && h.L2.Access(addr) {
		if write {
			return 2
		}
		h.L2Hits++
		if seq {
			h.SeqL2++
		}
		return 2
	}
	if h.L3 != nil {
		if h.L3.Access(addr) {
			if write {
				return 3
			}
			h.L3Hits++
			if seq {
				h.SeqL3++
			}
			return 3
		}
		if !write {
			h.Mem++
			if seq {
				h.SeqMem++
			}
		}
		return 4
	}
	if !write {
		h.Mem++
		if seq {
			h.SeqMem++
		}
	}
	return 4
}

// Accesses returns the total replayed accesses.
func (h *Hierarchy) Accesses() int64 {
	return h.L1Hits + h.L2Hits + h.L3Hits + h.Mem
}
