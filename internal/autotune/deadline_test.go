package autotune

import (
	"context"
	"errors"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
)

func waitNoLeakedWorkers(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if parallel.LeakedWorkers() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("leaked workers never drained: %d", parallel.LeakedWorkers())
}

// ExecuteCtx must abandon a stalled worker at the deadline instead of
// blocking the caller forever.
func TestExecuteCtxAbandonsStalledWorker(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in, f, out := s.NewInput(), s.NewFilter(), s.NewOutput()

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := ExecuteCtx(ctx, s, DefaultSchedule(s), in, f, out, 4)
	if !errors.Is(err, parallel.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// A stalled candidate measurement must be skipped — recorded as
// unusable — and the tuning run must still converge on a healthy best
// schedule within bounded time.
func TestTuneSkipsStalledCandidate(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}

	faultinject.Arm(faultinject.WorkerStall, 0)
	done := make(chan Result, 1)
	go func() {
		done <- Tune(s, TuneOptions{
			Population: 4, Generations: 2, Trials: 10, Threads: 2, Seed: 5,
			CandidateTimeout: 50 * time.Millisecond,
		})
	}()
	var res Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("tuning run wedged on the stalled candidate")
	}
	if res.BestSec >= 1e30 {
		t.Fatalf("tuning found no healthy candidate: %+v", res)
	}
	if !res.Best.Valid(s) {
		t.Fatalf("best schedule invalid: %v", res.Best)
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
	checkSchedule(t, s, res.Best)
}
