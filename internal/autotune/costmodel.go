package autotune

import (
	"math"

	"ndirect/internal/conv"
)

// Ansor pairs its evolutionary search with a learned cost model so
// that only the most promising candidates are measured on hardware
// (§2.4: "evolutionary search with a predictive model"). This file
// provides the reproduction's equivalent: a ridge-regression model
// over schedule features, trained online on the measurements the
// search has already paid for, used to rank a large candidate pool
// down to a small measurement set.

// featureDim is the length of the schedule feature vector.
const featureDim = 9

// features maps a (shape, schedule) pair to the regression inputs:
// log-scale tile sizes, the vector width, cache-footprint ratios and
// the categorical knobs. All features are bounded and dimensionless
// so one model can generalise across related schedules.
func features(s conv.Shape, sch Schedule) [featureDim]float64 {
	inTileFloats := float64(sch.TileC) * float64((sch.TileH-1)*s.Str+s.R) * float64((sch.TileW-1)*s.Str+s.S)
	outTileFloats := float64(sch.TileK) * float64(sch.TileH) * float64(sch.TileW)
	l1 := 32.0 * 1024 / 4
	l2 := 512.0 * 1024 / 4
	f := [featureDim]float64{
		math.Log2(float64(sch.TileK)),
		math.Log2(float64(sch.TileC)),
		math.Log2(float64(sch.TileH)),
		math.Log2(float64(sch.TileW)),
		float64(sch.VecW) / 12,
		math.Min(4, inTileFloats/l1),  // input-tile pressure on L1
		math.Min(4, outTileFloats/l2), // output-tile pressure on L2
		b2f(sch.UnrollS),
		b2f(sch.ParallelKH),
	}
	return f
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// CostModel is an online ridge regression predicting log run time
// from schedule features.
type CostModel struct {
	shape   conv.Shape
	lambda  float64
	xs      [][featureDim + 1]float64 // with bias term
	ys      []float64                 // log seconds
	weights [featureDim + 1]float64
	trained bool
}

// NewCostModel creates a model for one layer shape.
func NewCostModel(s conv.Shape) *CostModel {
	return &CostModel{shape: s, lambda: 1e-3}
}

// Observe records a measured (schedule, seconds) pair and refits.
func (m *CostModel) Observe(sch Schedule, seconds float64) {
	if seconds <= 0 {
		return
	}
	f := features(m.shape, sch)
	var row [featureDim + 1]float64
	copy(row[:featureDim], f[:])
	row[featureDim] = 1 // bias
	m.xs = append(m.xs, row)
	m.ys = append(m.ys, math.Log(seconds))
	m.fit()
}

// Samples returns the number of observations.
func (m *CostModel) Samples() int { return len(m.xs) }

// Trained reports whether the model has enough data to rank
// candidates (at least as many samples as features).
func (m *CostModel) Trained() bool { return m.trained }

// Predict returns the model's predicted run time in seconds. Before
// training it returns +Inf so callers fall back to measuring.
func (m *CostModel) Predict(sch Schedule) float64 {
	if !m.trained {
		return math.Inf(1)
	}
	f := features(m.shape, sch)
	acc := m.weights[featureDim]
	for i := 0; i < featureDim; i++ {
		acc += m.weights[i] * f[i]
	}
	return math.Exp(acc)
}

// fit solves the ridge normal equations (XᵀX + λI)w = Xᵀy by Gaussian
// elimination with partial pivoting — a 10×10 system, instant.
func (m *CostModel) fit() {
	n := len(m.xs)
	if n < featureDim+1 {
		return
	}
	const d = featureDim + 1
	var a [d][d + 1]float64
	for i := 0; i < d; i++ {
		a[i][i] = m.lambda
	}
	for r := 0; r < n; r++ {
		x := &m.xs[r]
		y := m.ys[r]
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += x[i] * x[j]
			}
			a[i][d] += x[i] * y
		}
	}
	// Elimination.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return // singular; keep previous weights
		}
		inv := 1 / a[col][col]
		for j := col; j <= d; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < d; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= d; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 0; i < d; i++ {
		m.weights[i] = a[i][d]
	}
	m.trained = true
}
