package autotune

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"ndirect/internal/conv"
)

// Tuning manifests (DESIGN.md §11): the persistence format that lets
// a production process warm-start from an offline `ndtune` run instead
// of re-deriving or re-searching schedules at request time. A manifest
// maps convolution shapes (batch normalised out — schedules are
// batch-independent the same way the dispatch registry's kernels are)
// to the best measured Schedule, with enough provenance (best seconds,
// trial count) to audit a stale entry.
//
// The format is versioned JSON. A decoder seeing a different version
// returns ErrManifestVersion; malformed bytes return ErrManifestCorrupt.
// Both are typed so loaders can distinguish "re-tune needed" from
// "operator error" — and neither is ever allowed to crash a server:
// serve.New and nn.Engine reject invalid entries with a rate-limited
// log and fall back to planning as if the entry were absent.
//
// Version 2 (DESIGN.md §12) adds a CRC32-C per entry over the entry's
// load-bearing fields (shape + schedule): a manifest is long-lived
// state that crosses machines and sits on disk between tuning and
// serving, so a flipped bit in a tile size would otherwise warm-start
// production onto a silently wrong (or invalid) schedule. Version 1
// manifests remain readable — they simply carry no checksums to check.

// ManifestVersion is the on-disk format version this build writes.
// Decoding also accepts manifestVersionV1.
const ManifestVersion = 2

// manifestVersionV1 is the pre-checksum format: identical except that
// entries carry no crc32c field.
const manifestVersionV1 = 1

var (
	// ErrManifestVersion marks a manifest written by an incompatible
	// format version.
	ErrManifestVersion = errors.New("autotune: manifest version mismatch")
	// ErrManifestCorrupt marks bytes that do not decode as a manifest.
	ErrManifestCorrupt = errors.New("autotune: manifest corrupt")
)

// ManifestEntry is one tuned shape: the schedule that won the search
// plus its measurement provenance. Checksum is the CRC32-C over the
// entry's canonical shape+schedule encoding, stamped by EncodeManifest
// and verified by DecodeManifest (0 = absent: a v1 entry, or a
// hand-written one — tolerated but unprotected).
type ManifestEntry struct {
	Shape    conv.Shape `json:"shape"`
	Schedule Schedule   `json:"schedule"`
	BestSec  float64    `json:"best_sec,omitempty"` // winning measured seconds
	Trials   int        `json:"trials,omitempty"`   // schedules measured to find it
	Checksum uint32     `json:"crc32c,omitempty"`
	// Depthwise marks a depthwise-stage entry (`ndtune -depthwise`):
	// Shape carries the depthwise geometry (K = C) and DWRowTile — not
	// Schedule, which stays zero — is the tuned knob: the depthwise
	// output row-tile height the fused separable executor should force
	// (0 = let the plan solve it). Both fields omit from JSON when
	// zero, so v2 manifests without depthwise entries checksum exactly
	// as before.
	Depthwise bool `json:"depthwise,omitempty"`
	DWRowTile int  `json:"dw_row_tile,omitempty"`
}

// entryChecksum computes the CRC32-C over the fields that steer
// execution (shape and schedule; provenance is advisory). The input is
// the JSON encoding of a fixed two-field struct, which Go marshals
// deterministically, so the checksum is stable across encode cycles
// and Go versions.
func entryChecksum(e ManifestEntry) uint32 {
	// The depthwise fields use omitempty so standard entries encode —
	// and checksum — byte-identically to manifests written before the
	// fields existed.
	raw, err := json.Marshal(struct {
		Shape     conv.Shape `json:"shape"`
		Schedule  Schedule   `json:"schedule"`
		Depthwise bool       `json:"depthwise,omitempty"`
		DWRowTile int        `json:"dw_row_tile,omitempty"`
	}{e.Shape, e.Schedule, e.Depthwise, e.DWRowTile})
	if err != nil {
		// Plain structs of ints cannot fail to marshal; keep the zero
		// (= unprotected) rather than inventing an error path.
		return 0
	}
	return crc32.Checksum(raw, crc32.MakeTable(crc32.Castagnoli))
}

// Manifest is a versioned collection of tuned schedules keyed by
// shape. The zero value is NOT usable; call NewManifest (or decode).
type Manifest struct {
	Version int             `json:"version"`
	Entries []ManifestEntry `json:"entries"`
}

// NewManifest returns an empty manifest at the current version.
func NewManifest() *Manifest {
	return &Manifest{Version: ManifestVersion}
}

// manifestShape normalises a shape to its manifest key: batch size
// does not change which schedule wins, so entries are stored and
// looked up at N=1.
func manifestShape(s conv.Shape) conv.Shape {
	s.N = 1
	return s
}

// Set records the tuned schedule for s (any batch), replacing an
// existing entry for the same normalised shape.
func (m *Manifest) Set(s conv.Shape, sch Schedule, bestSec float64, trials int) {
	key := manifestShape(s)
	e := ManifestEntry{Shape: key, Schedule: sch, BestSec: bestSec, Trials: trials}
	for i := range m.Entries {
		if m.Entries[i].Shape == key && !m.Entries[i].Depthwise {
			m.Entries[i] = e
			return
		}
	}
	m.Entries = append(m.Entries, e)
}

// SetDepthwise records the tuned depthwise row-tile height for the
// depthwise geometry s (any batch; K normalised to C), replacing an
// existing depthwise entry for the same shape.
func (m *Manifest) SetDepthwise(s conv.Shape, rowTile int, bestSec float64, trials int) {
	key := manifestShape(s)
	key.K = key.C
	e := ManifestEntry{Shape: key, Depthwise: true, DWRowTile: rowTile, BestSec: bestSec, Trials: trials}
	for i := range m.Entries {
		if m.Entries[i].Shape == key && m.Entries[i].Depthwise {
			m.Entries[i] = e
			return
		}
	}
	m.Entries = append(m.Entries, e)
}

// Lookup returns the schedule tuned for s (any batch) and whether one
// exists. Depthwise entries are invisible here — their Schedule is
// deliberately zero and must never reach the Ansor executor. Nil-safe:
// a nil manifest covers nothing.
func (m *Manifest) Lookup(s conv.Shape) (Schedule, bool) {
	if m == nil {
		return Schedule{}, false
	}
	key := manifestShape(s)
	for i := range m.Entries {
		if m.Entries[i].Shape == key && !m.Entries[i].Depthwise {
			return m.Entries[i].Schedule, true
		}
	}
	return Schedule{}, false
}

// LookupDepthwise returns the tuned depthwise row-tile height for the
// depthwise geometry s (any batch) and whether an entry exists.
// Nil-safe.
func (m *Manifest) LookupDepthwise(s conv.Shape) (int, bool) {
	if m == nil {
		return 0, false
	}
	key := manifestShape(s)
	key.K = key.C
	for i := range m.Entries {
		if m.Entries[i].Shape == key && m.Entries[i].Depthwise {
			return m.Entries[i].DWRowTile, true
		}
	}
	return 0, false
}

// Covers reports whether the manifest holds an entry for s (any
// batch), standard or depthwise. Nil-safe.
func (m *Manifest) Covers(s conv.Shape) bool {
	if _, ok := m.Lookup(s); ok {
		return true
	}
	_, ok := m.LookupDepthwise(s)
	return ok
}

// Validate drops entries whose shape fails conv.Shape.Validate or
// whose schedule fails Schedule.Valid for that shape, returning the
// rejected entries so the caller can log them. A manifest that has
// passed Validate only holds schedules safe to hand to the executor.
func (m *Manifest) Validate() (rejected []ManifestEntry) {
	kept := m.Entries[:0]
	for _, e := range m.Entries {
		if e.Depthwise {
			// Depthwise entries carry no schedule; the row tile is the
			// only executable field and any non-negative height is safe
			// (the plan clamps it to the output rows).
			if e.Shape.Validate() != nil || e.Shape.K != e.Shape.C || e.DWRowTile < 0 {
				rejected = append(rejected, e)
				continue
			}
			kept = append(kept, e)
			continue
		}
		if e.Shape.Validate() != nil || !e.Schedule.Valid(e.Shape) {
			rejected = append(rejected, e)
			continue
		}
		kept = append(kept, e)
	}
	m.Entries = kept
	return rejected
}

// EncodeManifest serialises the manifest to deterministic, indented
// JSON (entries sorted by shape string so repeated tuning runs diff
// cleanly), stamping every entry's CRC32-C.
func EncodeManifest(m *Manifest) ([]byte, error) {
	out := Manifest{Version: ManifestVersion, Entries: append([]ManifestEntry(nil), m.Entries...)}
	for i := range out.Entries {
		out.Entries[i].Checksum = entryChecksum(out.Entries[i])
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		return out.Entries[i].Shape.String() < out.Entries[j].Shape.String()
	})
	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// DecodeManifest parses manifest bytes, returning ErrManifestCorrupt
// for malformed JSON (or a version-2 entry failing its checksum) and
// ErrManifestVersion for an unknown version. Version 1 manifests are
// accepted without checksum protection. Entries are otherwise decoded
// as-is; call Validate before trusting the schedules.
func DecodeManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrManifestCorrupt, err)
	}
	switch m.Version {
	case manifestVersionV1:
		return &m, nil
	case ManifestVersion:
	default:
		return nil, fmt.Errorf("%w: got %d, want %d (or %d)", ErrManifestVersion, m.Version, ManifestVersion, manifestVersionV1)
	}
	for i := range m.Entries {
		e := m.Entries[i]
		if e.Checksum == 0 {
			continue // unstamped entry (hand-written): tolerated, unprotected
		}
		if got := entryChecksum(e); got != e.Checksum {
			return nil, fmt.Errorf("%w: entry %d (%v) fails its CRC32-C (stored %#x, computed %#x): the manifest was altered or damaged after tuning",
				ErrManifestCorrupt, i, e.Shape, e.Checksum, got)
		}
	}
	return &m, nil
}

// WriteManifestFile atomically-enough writes the manifest to path
// (temp file in the same directory, then rename).
func WriteManifestFile(path string, m *Manifest) error {
	raw, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifestFile reads and decodes the manifest at path. I/O errors
// pass through (notably os.ErrNotExist, so callers can start fresh);
// decode failures carry the typed manifest errors. A zero-byte file is
// treated like a missing one (an empty manifest): the atomic writer
// never leaves one behind, so it can only come from mktemp/touch
// pre-creating the output path.
func ReadManifestFile(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return NewManifest(), nil
	}
	return DecodeManifest(raw)
}
