package autotune

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ndirect/internal/conv"
)

// Tuning manifests (DESIGN.md §11): the persistence format that lets
// a production process warm-start from an offline `ndtune` run instead
// of re-deriving or re-searching schedules at request time. A manifest
// maps convolution shapes (batch normalised out — schedules are
// batch-independent the same way the dispatch registry's kernels are)
// to the best measured Schedule, with enough provenance (best seconds,
// trial count) to audit a stale entry.
//
// The format is versioned JSON. A decoder seeing a different version
// returns ErrManifestVersion; malformed bytes return ErrManifestCorrupt.
// Both are typed so loaders can distinguish "re-tune needed" from
// "operator error" — and neither is ever allowed to crash a server:
// serve.New and nn.Engine reject invalid entries with a rate-limited
// log and fall back to planning as if the entry were absent.

// ManifestVersion is the on-disk format version this build reads and
// writes. Bump on any incompatible change to the entry encoding.
const ManifestVersion = 1

var (
	// ErrManifestVersion marks a manifest written by an incompatible
	// format version.
	ErrManifestVersion = errors.New("autotune: manifest version mismatch")
	// ErrManifestCorrupt marks bytes that do not decode as a manifest.
	ErrManifestCorrupt = errors.New("autotune: manifest corrupt")
)

// ManifestEntry is one tuned shape: the schedule that won the search
// plus its measurement provenance.
type ManifestEntry struct {
	Shape    conv.Shape `json:"shape"`
	Schedule Schedule   `json:"schedule"`
	BestSec  float64    `json:"best_sec,omitempty"` // winning measured seconds
	Trials   int        `json:"trials,omitempty"`   // schedules measured to find it
}

// Manifest is a versioned collection of tuned schedules keyed by
// shape. The zero value is NOT usable; call NewManifest (or decode).
type Manifest struct {
	Version int             `json:"version"`
	Entries []ManifestEntry `json:"entries"`
}

// NewManifest returns an empty manifest at the current version.
func NewManifest() *Manifest {
	return &Manifest{Version: ManifestVersion}
}

// manifestShape normalises a shape to its manifest key: batch size
// does not change which schedule wins, so entries are stored and
// looked up at N=1.
func manifestShape(s conv.Shape) conv.Shape {
	s.N = 1
	return s
}

// Set records the tuned schedule for s (any batch), replacing an
// existing entry for the same normalised shape.
func (m *Manifest) Set(s conv.Shape, sch Schedule, bestSec float64, trials int) {
	key := manifestShape(s)
	e := ManifestEntry{Shape: key, Schedule: sch, BestSec: bestSec, Trials: trials}
	for i := range m.Entries {
		if m.Entries[i].Shape == key {
			m.Entries[i] = e
			return
		}
	}
	m.Entries = append(m.Entries, e)
}

// Lookup returns the schedule tuned for s (any batch) and whether one
// exists. Nil-safe: a nil manifest covers nothing.
func (m *Manifest) Lookup(s conv.Shape) (Schedule, bool) {
	if m == nil {
		return Schedule{}, false
	}
	key := manifestShape(s)
	for i := range m.Entries {
		if m.Entries[i].Shape == key {
			return m.Entries[i].Schedule, true
		}
	}
	return Schedule{}, false
}

// Covers reports whether the manifest holds an entry for s (any
// batch). Nil-safe.
func (m *Manifest) Covers(s conv.Shape) bool {
	_, ok := m.Lookup(s)
	return ok
}

// Validate drops entries whose shape fails conv.Shape.Validate or
// whose schedule fails Schedule.Valid for that shape, returning the
// rejected entries so the caller can log them. A manifest that has
// passed Validate only holds schedules safe to hand to the executor.
func (m *Manifest) Validate() (rejected []ManifestEntry) {
	kept := m.Entries[:0]
	for _, e := range m.Entries {
		if e.Shape.Validate() != nil || !e.Schedule.Valid(e.Shape) {
			rejected = append(rejected, e)
			continue
		}
		kept = append(kept, e)
	}
	m.Entries = kept
	return rejected
}

// EncodeManifest serialises the manifest to deterministic, indented
// JSON (entries sorted by shape string so repeated tuning runs diff
// cleanly).
func EncodeManifest(m *Manifest) ([]byte, error) {
	out := Manifest{Version: ManifestVersion, Entries: append([]ManifestEntry(nil), m.Entries...)}
	sort.Slice(out.Entries, func(i, j int) bool {
		return out.Entries[i].Shape.String() < out.Entries[j].Shape.String()
	})
	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// DecodeManifest parses manifest bytes, returning ErrManifestCorrupt
// for malformed JSON and ErrManifestVersion for a version other than
// ManifestVersion. Entries are decoded as-is; call Validate before
// trusting the schedules.
func DecodeManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrManifestCorrupt, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrManifestVersion, m.Version, ManifestVersion)
	}
	return &m, nil
}

// WriteManifestFile atomically-enough writes the manifest to path
// (temp file in the same directory, then rename).
func WriteManifestFile(path string, m *Manifest) error {
	raw, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifestFile reads and decodes the manifest at path. I/O errors
// pass through (notably os.ErrNotExist, so callers can start fresh);
// decode failures carry the typed manifest errors. A zero-byte file is
// treated like a missing one (an empty manifest): the atomic writer
// never leaves one behind, so it can only come from mktemp/touch
// pre-creating the output path.
func ReadManifestFile(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return NewManifest(), nil
	}
	return DecodeManifest(raw)
}
