package autotune

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
)

// TuneOptions configure the evolutionary search. The defaults mirror
// the paper's per-layer budget in miniature (Ansor converges within
// its 1,000-trial budget; our space is far smaller).
type TuneOptions struct {
	Population  int // schedules per generation (default 16)
	Generations int // evolution rounds (default 6)
	Trials      int // hard cap on measurements (default 96)
	Threads     int // workers for the measured runs
	Seed        int64
	// Repeats per measurement (minimum time taken; default 2).
	Repeats int
	// MeasureBatch shrinks the batch during tuning (0 = shape's N).
	// The tuned schedule transfers: tiles depend on the layer, not N.
	MeasureBatch int
	// UseCostModel enables the Ansor-style learned cost model: each
	// generation proposes PoolFactor× more candidates than the
	// population, ranks them with an online ridge regression trained
	// on all prior measurements, and measures only the predicted-best
	// subset — spending the hardware budget where the model thinks it
	// matters (§2.4).
	UseCostModel bool
	// PoolFactor is the candidate-to-measurement ratio when the cost
	// model is active (default 4).
	PoolFactor int
	// CandidateTimeout bounds each measured candidate run (0 = no
	// bound). A candidate that exceeds it — a pathological tile
	// choice, or a wedged worker — is abandoned and recorded as
	// unusable (1e30) instead of hanging the whole tuning run; the
	// search simply moves to the next candidate.
	CandidateTimeout time.Duration
}

func (o *TuneOptions) setDefaults() {
	if o.Population <= 0 {
		o.Population = 16
	}
	if o.Generations <= 0 {
		o.Generations = 6
	}
	if o.Trials <= 0 {
		o.Trials = 96
	}
	if o.Repeats <= 0 {
		o.Repeats = 2
	}
	if o.PoolFactor <= 0 {
		o.PoolFactor = 4
	}
}

// Result reports the outcome of a tuning run.
type Result struct {
	Best      Schedule
	BestSec   float64 // best measured time on the tuning shape
	Trials    int     // measurements performed
	History   []float64
	TuneShape conv.Shape // the (possibly batch-reduced) measured shape
	// ModelRanked counts candidates that were scored by the cost
	// model instead of being measured (0 without UseCostModel).
	ModelRanked int
}

// Tune searches for the fastest schedule for the shape using
// measured execution time as fitness — the Ansor workflow with the
// learned cost model replaced by direct measurement (our trial budget
// is small enough to afford it).
func Tune(s conv.Shape, opt TuneOptions) Result {
	opt.setDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	ts := s
	if opt.MeasureBatch > 0 && opt.MeasureBatch < s.N {
		ts = s.WithBatch(opt.MeasureBatch)
	}
	in := ts.NewInput()
	in.FillRandom(11)
	filter := ts.NewFilter()
	filter.FillRandom(13)
	out := ts.NewOutput()

	res := Result{TuneShape: ts, BestSec: 1e30}
	seen := map[Schedule]float64{}
	cm := NewCostModel(ts)

	measure := func(sch Schedule) float64 {
		if t, ok := seen[sch]; ok {
			return t
		}
		if res.Trials >= opt.Trials {
			return 1e30
		}
		res.Trials++
		best := 1e30
		for rep := 0; rep < opt.Repeats; rep++ {
			ctx, cancel := context.Background(), func() {}
			if opt.CandidateTimeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, opt.CandidateTimeout)
			}
			t0 := time.Now()
			err := ExecuteCtx(ctx, ts, sch, in, filter, out, opt.Threads)
			cancel()
			if err != nil {
				// Inadmissible, faulting, or stalled candidate: record
				// it as unusable so the search never re-measures or
				// breeds from it, and move on instead of aborting (or
				// hanging) the run.
				if errors.Is(err, parallel.ErrCanceled) {
					// The timed-out candidate's abandoned workers may
					// still store into the shared output tensor whenever
					// they resume; hand subsequent measurements a fresh
					// one so they never race with (or get skewed by) the
					// stragglers.
					out = ts.NewOutput()
				}
				seen[sch] = 1e30
				return 1e30
			}
			if d := time.Since(t0).Seconds(); d < best {
				best = d
			}
		}
		seen[sch] = best
		cm.Observe(sch, best)
		if best < res.BestSec {
			res.BestSec = best
			res.Best = sch
		}
		res.History = append(res.History, res.BestSec)
		return best
	}

	// Generation 0: default schedule plus random exploration.
	pop := []Schedule{DefaultSchedule(ts)}
	for len(pop) < opt.Population {
		pop = append(pop, randomSchedule(rng, ts))
	}
	type scored struct {
		sch Schedule
		sec float64
	}
	for g := 0; g < opt.Generations && res.Trials < opt.Trials; g++ {
		// With the cost model, rank a larger proposal pool and spend
		// measurements only on the predicted-best subset.
		if opt.UseCostModel && cm.Trained() && g > 0 {
			pool := pop
			for len(pool) < opt.Population*opt.PoolFactor {
				pool = append(pool, mutate(rng, pop[rng.Intn(len(pop))], ts))
			}
			sort.SliceStable(pool, func(i, j int) bool {
				return cm.Predict(pool[i]) < cm.Predict(pool[j])
			})
			res.ModelRanked += len(pool) - opt.Population
			pop = pool[:opt.Population]
		}
		scoredPop := make([]scored, 0, len(pop))
		for _, sch := range pop {
			scoredPop = append(scoredPop, scored{sch, measure(sch)})
		}
		sort.Slice(scoredPop, func(i, j int) bool { return scoredPop[i].sec < scoredPop[j].sec })

		// Elites survive; offspring from mutation and crossover of the
		// top half; fresh randoms keep diversity.
		elite := max(2, opt.Population/4)
		next := make([]Schedule, 0, opt.Population)
		for i := 0; i < elite && i < len(scoredPop); i++ {
			next = append(next, scoredPop[i].sch)
		}
		half := max(2, len(scoredPop)/2)
		for len(next) < opt.Population-2 {
			a := scoredPop[rng.Intn(half)].sch
			if rng.Intn(3) == 0 {
				b := scoredPop[rng.Intn(half)].sch
				next = append(next, crossover(rng, a, b, ts))
			} else {
				next = append(next, mutate(rng, a, ts))
			}
		}
		for len(next) < opt.Population {
			next = append(next, randomSchedule(rng, ts))
		}
		pop = next
	}
	return res
}
