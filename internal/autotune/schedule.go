// Package autotune is the reproduction's stand-in for Ansor (TVM's
// auto-scheduler, Zheng et al. OSDI'20), the search-based competitor
// of §2.4/§8.2: it explores a schedule space for a generic tiled
// direct convolution with an evolutionary search driven by measured
// run time, exactly the role Ansor plays in the paper's evaluation —
// a strong tuned baseline that nDirect still beats per-layer because
// the searched loop nest lacks nDirect's packing and filter-blocking
// micro-kernel structure, but which can win end-to-end when operator
// fusion matters (§8.3).
package autotune

import (
	"fmt"
	"math/rand"

	"ndirect/internal/conv"
)

// Schedule is one point of the search space: a TVM-style NCHW direct
// convolution schedule with two-level loop tiling, a vectorised
// output-column axis and an unrolled kernel-width axis.
type Schedule struct {
	TileK int // output-channel tile
	TileC int // input-channel (reduction) tile
	TileH int // output-row tile
	TileW int // output-column tile (multiple of VecW)
	VecW  int // vector width over output columns (4, 8 or 12)
	// UnrollS unrolls the kernel-width loop when true (Ansor's
	// unroll pragma).
	UnrollS bool
	// ParallelKH selects the parallel axis binding: false fuses
	// (n, h-tiles) — the batch-major binding — true fuses
	// (n, k-tiles).
	ParallelKH bool
}

func (sch Schedule) String() string {
	return fmt.Sprintf("Tk=%d Tc=%d Th=%d Tw=%d vec=%d unroll=%v pkh=%v",
		sch.TileK, sch.TileC, sch.TileH, sch.TileW, sch.VecW, sch.UnrollS, sch.ParallelKH)
}

// Valid reports whether the schedule is admissible for the shape.
func (sch Schedule) Valid(s conv.Shape) bool {
	return sch.TileK >= 1 && sch.TileK <= s.K &&
		sch.TileC >= 1 && sch.TileC <= s.C &&
		sch.TileH >= 1 && sch.TileH <= s.P() &&
		(sch.VecW == 4 || sch.VecW == 8 || sch.VecW == 12) &&
		sch.TileW >= sch.VecW && sch.TileW%sch.VecW == 0
}

// DefaultSchedule is the untuned starting point (TVM's fallback
// schedule: modest square tiles, vector width 4). Routed through
// clampSchedule so it is admissible for every valid shape, including
// degenerate ones (K < 4, 1×1 outputs, ragged Q).
func DefaultSchedule(s conv.Shape) Schedule {
	return clampSchedule(Schedule{
		TileK: min(32, s.K),
		TileC: min(16, s.C),
		TileH: min(4, s.P()),
		TileW: 8,
		VecW:  4,
	}, s)
}

// candidates for the categorical knobs.
var (
	tileKChoices = []int{4, 8, 16, 32, 64, 128}
	tileCChoices = []int{4, 8, 16, 32, 64}
	tileHChoices = []int{1, 2, 4, 7, 8, 14}
	vecWChoices  = []int{4, 8, 12}
	tileWFactors = []int{1, 2, 3, 4}
)

// randomSchedule samples an admissible schedule uniformly from the
// knob grid. clampSchedule makes every sample admissible, so the
// retry loop exists only as defence in depth — it is bounded (the
// unbounded form hung forever on shapes no grid point fit) and falls
// back to DefaultSchedule rather than spin.
func randomSchedule(rng *rand.Rand, s conv.Shape) Schedule {
	for range 32 {
		vec := vecWChoices[rng.Intn(len(vecWChoices))]
		sch := Schedule{
			TileK:      tileKChoices[rng.Intn(len(tileKChoices))],
			TileC:      tileCChoices[rng.Intn(len(tileCChoices))],
			TileH:      tileHChoices[rng.Intn(len(tileHChoices))],
			TileW:      vec * tileWFactors[rng.Intn(len(tileWFactors))],
			VecW:       vec,
			UnrollS:    rng.Intn(2) == 1,
			ParallelKH: rng.Intn(2) == 1,
		}
		sch = clampSchedule(sch, s)
		if sch.Valid(s) {
			return sch
		}
	}
	return DefaultSchedule(s)
}

// mutate perturbs one knob of the schedule.
func mutate(rng *rand.Rand, sch Schedule, s conv.Shape) Schedule {
	out := sch
	switch rng.Intn(6) {
	case 0:
		out.TileK = tileKChoices[rng.Intn(len(tileKChoices))]
	case 1:
		out.TileC = tileCChoices[rng.Intn(len(tileCChoices))]
	case 2:
		out.TileH = tileHChoices[rng.Intn(len(tileHChoices))]
	case 3:
		out.VecW = vecWChoices[rng.Intn(len(vecWChoices))]
		out.TileW = out.VecW * tileWFactors[rng.Intn(len(tileWFactors))]
	case 4:
		out.UnrollS = !out.UnrollS
	case 5:
		out.ParallelKH = !out.ParallelKH
	}
	out = clampSchedule(out, s)
	if !out.Valid(s) {
		return sch
	}
	return out
}

// crossover mixes two parents knob-wise.
func crossover(rng *rand.Rand, a, b Schedule, s conv.Shape) Schedule {
	pick := func(x, y int) int {
		if rng.Intn(2) == 0 {
			return x
		}
		return y
	}
	out := Schedule{
		TileK:      pick(a.TileK, b.TileK),
		TileC:      pick(a.TileC, b.TileC),
		TileH:      pick(a.TileH, b.TileH),
		UnrollS:    a.UnrollS,
		ParallelKH: b.ParallelKH,
	}
	if rng.Intn(2) == 0 {
		out.VecW, out.TileW = a.VecW, a.TileW
	} else {
		out.VecW, out.TileW = b.VecW, b.TileW
	}
	out = clampSchedule(out, s)
	if !out.Valid(s) {
		return a
	}
	return out
}

// clampSchedule pulls the schedule inside the problem dimensions
// while preserving the vector-width divisibility constraint. It is
// total: for any input schedule — including the zero value a failed
// tune can leave behind — and any valid shape, the result passes
// Valid. The previous version divided by sch.VecW before normalising
// it, so a zero-value schedule reaching ClampFor (e.g. via
// nn.Engine.Tune storing a no-trial Result.Best) panicked with a
// divide-by-zero in the serving path; tile fields ≤ 0 similarly
// escaped as invalid and fed log2(0) into the cost model's features.
func clampSchedule(sch Schedule, s conv.Shape) Schedule {
	if sch.VecW != 4 && sch.VecW != 8 && sch.VecW != 12 {
		sch.VecW = 4
	}
	sch.TileK = max(1, min(sch.TileK, s.K))
	sch.TileC = max(1, min(sch.TileC, s.C))
	sch.TileH = max(1, min(sch.TileH, s.P()))
	sch.TileW = max(sch.VecW, sch.TileW-sch.TileW%sch.VecW)
	if sch.TileW > s.Q() {
		sch.TileW = s.Q() / sch.VecW * sch.VecW
		if sch.TileW == 0 {
			// Output narrower than any vector width: fall back to the
			// minimum admissible tile (Valid does not require TileW ≤ Q;
			// the executor handles the ragged edge).
			sch.VecW = 4
			sch.TileW = 4
		}
	}
	return sch
}
