package autotune

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndirect/internal/conv"
)

func testManifest() *Manifest {
	m := NewManifest()
	m.Set(conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		Schedule{TileK: 16, TileC: 8, TileH: 4, TileW: 12, VecW: 12, UnrollS: true}, 0.0013, 24)
	m.Set(conv.Shape{N: 1, C: 64, H: 56, W: 56, K: 64, R: 1, S: 1, Str: 1, Pad: 0},
		Schedule{TileK: 32, TileC: 16, TileH: 8, TileW: 8, VecW: 8}, 0.004, 48)
	return m
}

// TestManifestRoundTrip: encode → decode preserves every entry's
// schedule and provenance exactly, through both the byte and the file
// APIs.
func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ManifestVersion || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip: version %d entries %d", got.Version, len(got.Entries))
	}
	for _, e := range m.Entries {
		sch, ok := got.Lookup(e.Shape)
		if !ok || sch != e.Schedule {
			t.Fatalf("round trip lost shape %v: got %v ok=%v want %v", e.Shape, sch, ok, e.Schedule)
		}
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Entries) != len(m.Entries) {
		t.Fatalf("file round trip: %d entries, want %d", len(got2.Entries), len(m.Entries))
	}
}

// TestManifestCorruptAndStale: malformed bytes and stale versions are
// rejected with the typed errors, so loaders can distinguish
// "re-tune" from "operator error".
func TestManifestCorruptAndStale(t *testing.T) {
	if _, err := DecodeManifest([]byte("{not json")); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("corrupt bytes: err = %v, want ErrManifestCorrupt", err)
	}
	if _, err := DecodeManifest([]byte(`{"version": 999, "entries": []}`)); !errors.Is(err, ErrManifestVersion) {
		t.Fatalf("stale version: err = %v, want ErrManifestVersion", err)
	}
	if _, err := ReadManifestFile(filepath.Join(t.TempDir(), "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadManifestFile(empty); err != nil || len(m.Entries) != 0 {
		t.Fatalf("zero-byte file (mktemp pre-created): m=%v err=%v, want empty manifest", m, err)
	}
}

// Version-2 integrity: the encoder stamps a CRC32-C per entry. The
// decoder must reject an entry whose load-bearing fields (shape,
// schedule) were altered after stamping — typed as ErrManifestCorrupt,
// naming the entry — while provenance edits stay legal (outside the
// checksum) and version-1 manifests stay readable (no protection).
func TestManifestChecksumDefense(t *testing.T) {
	m := testManifest()
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped tile size after stamping must be caught.
	tampered := []byte(strings.Replace(string(raw), `"TileK": 16`, `"TileK": 61`, 1))
	if string(tampered) == string(raw) {
		t.Fatal("test setup: TileK field not found in encoding")
	}
	if _, err := DecodeManifest(tampered); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("tampered schedule: err = %v, want ErrManifestCorrupt", err)
	}

	// Provenance is advisory and outside the checksum: editing it is
	// not corruption.
	prov := []byte(strings.Replace(string(raw), `"trials": 24`, `"trials": 999`, 1))
	if _, err := DecodeManifest(prov); err != nil {
		t.Fatalf("provenance edit rejected: %v", err)
	}

	// A v1 manifest (no checksums) still reads.
	v1 := []byte(`{"version": 1, "entries": [{"shape": {"N":1,"C":8,"H":16,"W":16,"K":16,"R":3,"S":3,"Str":1,"Pad":1},
		"schedule": {"TileK":16,"TileC":8,"TileH":4,"TileW":12,"VecW":12,"UnrollS":true}}]}`)
	got, err := DecodeManifest(v1)
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0].Checksum != 0 {
		t.Fatalf("v1 decode: %d entries, checksum %#x; want 1 unstamped entry", len(got.Entries), got.Entries[0].Checksum)
	}

	// An unstamped v2 entry (hand-written) is tolerated.
	unstamped := []byte(`{"version": 2, "entries": [{"shape": {"N":1,"C":8,"H":16,"W":16,"K":16,"R":3,"S":3,"Str":1,"Pad":1},
		"schedule": {"TileK":16,"TileC":8,"TileH":4,"TileW":12,"VecW":12}}]}`)
	if _, err := DecodeManifest(unstamped); err != nil {
		t.Fatalf("unstamped v2 entry rejected: %v", err)
	}
}

// TestManifestValidateRejects: entries with invalid shapes or
// inadmissible schedules are dropped (and reported), keeping only
// executor-safe schedules.
func TestManifestValidateRejects(t *testing.T) {
	m := testManifest()
	good := len(m.Entries)
	m.Entries = append(m.Entries,
		ManifestEntry{ // invalid shape
			Shape:    conv.Shape{N: 1, C: 0, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			Schedule: Schedule{TileK: 1, TileC: 1, TileH: 1, TileW: 4, VecW: 4},
		},
		ManifestEntry{ // schedule fails Valid (TileK > K)
			Shape:    conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1},
			Schedule: Schedule{TileK: 64, TileC: 1, TileH: 1, TileW: 4, VecW: 4},
		})
	rejected := m.Validate()
	if len(rejected) != 2 {
		t.Fatalf("Validate rejected %d entries, want 2", len(rejected))
	}
	if len(m.Entries) != good {
		t.Fatalf("Validate kept %d entries, want %d", len(m.Entries), good)
	}
}

// TestManifestLookupBatchNormalized: entries cover every batch of
// their shape, and Set replaces rather than duplicates.
func TestManifestLookupBatchNormalized(t *testing.T) {
	m := NewManifest()
	s := conv.Shape{N: 4, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	sch := Schedule{TileK: 8, TileC: 8, TileH: 2, TileW: 8, VecW: 8}
	m.Set(s, sch, 0.01, 10)
	for _, batch := range []int{1, 2, 16} {
		got, ok := m.Lookup(s.WithBatch(batch))
		if !ok || got != sch {
			t.Fatalf("Lookup at batch %d: %v ok=%v", batch, got, ok)
		}
	}
	m.Set(s.WithBatch(1), Schedule{TileK: 16, TileC: 8, TileH: 2, TileW: 8, VecW: 8}, 0.009, 12)
	if len(m.Entries) != 1 {
		t.Fatalf("Set duplicated the entry: %d entries", len(m.Entries))
	}
	if !m.Covers(s) {
		t.Fatal("Covers(s) = false after Set")
	}
	var nilM *Manifest
	if nilM.Covers(s) {
		t.Fatal("nil manifest claims coverage")
	}
}

// TestManifestDepthwiseEntries: depthwise entries (ndtune -depthwise)
// round-trip with checksum protection, stay invisible to the standard
// Lookup (their zero schedule must never reach the Ansor executor),
// and validate on their own rules.
func TestManifestDepthwiseEntries(t *testing.T) {
	dw := conv.Shape{N: 1, C: 32, H: 112, W: 112, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	m := testManifest()
	m.SetDepthwise(dw, 7, 0.0009, 5)
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rt, ok := got.LookupDepthwise(dw.WithBatch(8)); !ok || rt != 7 {
		t.Fatalf("LookupDepthwise = (%d, %v), want (7, true)", rt, ok)
	}
	if _, ok := got.Lookup(dw); ok {
		t.Fatal("depthwise entry leaked into the standard Lookup")
	}
	if !got.Covers(dw) {
		t.Fatal("Covers must include depthwise entries")
	}

	// A standard and a depthwise entry for the same shape coexist.
	m.Set(dw, Schedule{TileK: 16, TileC: 8, TileH: 4, TileW: 12, VecW: 12}, 0.002, 9)
	if sch, ok := m.Lookup(dw); !ok || sch.TileK != 16 {
		t.Fatalf("standard entry displaced by depthwise twin: %v ok=%v", sch, ok)
	}
	if rt, ok := m.LookupDepthwise(dw); !ok || rt != 7 {
		t.Fatalf("depthwise entry displaced by standard twin: (%d, %v)", rt, ok)
	}

	// Corrupting the row tile after encoding trips the entry checksum.
	tampered := strings.Replace(string(raw), `"dw_row_tile": 7`, `"dw_row_tile": 9`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found in encoding")
	}
	if _, err := DecodeManifest([]byte(tampered)); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("tampered depthwise entry decoded: %v", err)
	}

	// Validate: negative row tile and non-depthwise geometry (K != C)
	// are rejected; a zero row tile (plan-solved) is kept.
	v := NewManifest()
	v.SetDepthwise(dw, 0, 0, 0)
	v.Entries = append(v.Entries,
		ManifestEntry{Shape: dw, Depthwise: true, DWRowTile: -1},
		ManifestEntry{Shape: conv.Shape{N: 1, C: 32, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}, Depthwise: true, DWRowTile: 2},
	)
	if rej := v.Validate(); len(rej) != 2 || len(v.Entries) != 1 {
		t.Fatalf("Validate kept %d rejected %d, want 1/2", len(v.Entries), len(rej))
	}
}

// TestManifestChecksumBackCompat: a manifest containing only standard
// entries encodes byte-identically (and so checksum-identically) to
// what the pre-depthwise format produced — the omitempty contract.
func TestManifestChecksumBackCompat(t *testing.T) {
	raw, err := EncodeManifest(testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "depthwise") || strings.Contains(string(raw), "dw_row_tile") {
		t.Fatal("standard entries must not serialise depthwise fields")
	}
}
