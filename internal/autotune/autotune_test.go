package autotune

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

const tol = 2e-5

func checkSchedule(t *testing.T, s conv.Shape, sch Schedule) {
	t.Helper()
	if !sch.Valid(s) {
		t.Fatalf("schedule %v invalid for %v", sch, s)
	}
	in := s.NewInput()
	in.FillRandom(int64(s.C))
	f := s.NewFilter()
	f.FillRandom(int64(s.K))
	want := conv.Reference(s, in, f)
	got := s.NewOutput()
	if err := Execute(s, sch, in, f, got, 2); err != nil {
		t.Fatalf("%v / %v: %v", s, sch, err)
	}
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v / %v: rel diff %g", s, sch, d)
	}
}

func TestExecuteDefaultSchedule(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	checkSchedule(t, s, DefaultSchedule(s))
}

func TestExecuteScheduleVariants(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	for _, sch := range []Schedule{
		{TileK: 4, TileC: 4, TileH: 2, TileW: 4, VecW: 4},
		{TileK: 16, TileC: 8, TileH: 5, TileW: 8, VecW: 8, UnrollS: true},
		{TileK: 8, TileC: 8, TileH: 10, TileW: 12, VecW: 12, ParallelKH: true},
		{TileK: 16, TileC: 8, TileH: 1, TileW: 8, VecW: 4, UnrollS: true, ParallelKH: true},
	} {
		checkSchedule(t, s, sch)
	}
}

func TestExecuteStride2AndOddShapes(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 15, W: 15, K: 8, R: 3, S: 3, Str: 2, Pad: 1}
	checkSchedule(t, s, DefaultSchedule(s))
	s = conv.Shape{N: 1, C: 3, H: 19, W: 17, K: 8, R: 7, S: 7, Str: 2, Pad: 3}
	checkSchedule(t, s, DefaultSchedule(s))
	s = conv.Shape{N: 1, C: 5, H: 7, W: 7, K: 9, R: 1, S: 1, Str: 1, Pad: 0}
	checkSchedule(t, s, DefaultSchedule(s))
}

func TestRandomSchedulesAlwaysValidAndCorrect(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 9, W: 9, K: 12, R: 3, S: 3, Str: 1, Pad: 1}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		checkSchedule(t, s, randomSchedule(rng, s))
	}
}

// Property: mutate and crossover always yield valid schedules.
func TestMutateCrossoverClosureProperty(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSchedule(rng, s)
		b := randomSchedule(rng, s)
		for i := 0; i < 8; i++ {
			a = mutate(rng, a, s)
			if !a.Valid(s) {
				return false
			}
		}
		c := crossover(rng, a, b, s)
		return c.Valid(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClampScheduleTinyShape(t *testing.T) {
	s := conv.Shape{N: 1, C: 2, H: 3, W: 3, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	sch := clampSchedule(Schedule{TileK: 64, TileC: 64, TileH: 14, TileW: 48, VecW: 12}, s)
	if !sch.Valid(s) {
		t.Fatalf("clamped schedule %v still invalid", sch)
	}
	checkSchedule(t, s, sch)
}

func TestTuneImprovesOrMatchesDefault(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	res := Tune(s, TuneOptions{Population: 6, Generations: 3, Trials: 20, Threads: 1, Seed: 7})
	if res.Trials == 0 || res.BestSec >= 1e30 {
		t.Fatalf("tuning did not measure anything: %+v", res)
	}
	if !res.Best.Valid(s) {
		t.Fatalf("best schedule invalid: %v", res.Best)
	}
	// History must be monotone non-increasing (best-so-far).
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatal("history must be best-so-far")
		}
	}
	// The tuned schedule must still be correct.
	checkSchedule(t, s, res.Best)
}

func TestTuneDeterministicPerSeed(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	a := Tune(s, TuneOptions{Population: 4, Generations: 2, Trials: 8, Threads: 1, Seed: 3})
	b := Tune(s, TuneOptions{Population: 4, Generations: 2, Trials: 8, Threads: 1, Seed: 3})
	if a.Trials != b.Trials {
		t.Fatalf("trial counts differ: %d vs %d", a.Trials, b.Trials)
	}
	// Same seed explores the same schedules (times may differ).
	if a.Best != b.Best {
		t.Logf("note: best differs under timing noise: %v vs %v", a.Best, b.Best)
	}
}

func TestTuneMeasureBatchReduction(t *testing.T) {
	s := conv.Shape{N: 8, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	res := Tune(s, TuneOptions{Population: 4, Generations: 1, Trials: 4, Threads: 1, Seed: 1, MeasureBatch: 2})
	if res.TuneShape.N != 2 {
		t.Fatalf("tuning batch = %d, want 2", res.TuneShape.N)
	}
}

func TestExecuteInvalidScheduleError(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	err := Execute(s, Schedule{}, s.NewInput(), s.NewFilter(), s.NewOutput(), 1)
	if !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("err = %v, want ErrBadSchedule", err)
	}
	// The tuner must skip such a candidate rather than abort: a
	// measure() call on it returns the +inf sentinel (exercised via
	// Tune with a corrupted seed schedule in the faultinject tests).
	if err := Execute(s, DefaultSchedule(s), s.NewInput(), s.NewFilter(), s.NewOutput(), 1); err != nil {
		t.Fatalf("default schedule must execute: %v", err)
	}
}

func TestCostModelRecoversLinearRelation(t *testing.T) {
	// Feed the model synthetic times that are a pure function of one
	// feature (log TileK); after training its ranking must follow it.
	s := conv.Shape{N: 1, C: 64, H: 28, W: 28, K: 128, R: 3, S: 3, Str: 1, Pad: 1}
	cm := NewCostModel(s)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		sch := randomSchedule(rng, s)
		synthetic := 1e-3 * float64(sch.TileK) // time grows with TileK
		cm.Observe(sch, synthetic)
	}
	if !cm.Trained() {
		t.Fatal("model should be trained after 40 samples")
	}
	small := clampSchedule(Schedule{TileK: 4, TileC: 16, TileH: 4, TileW: 8, VecW: 4}, s)
	large := clampSchedule(Schedule{TileK: 128, TileC: 16, TileH: 4, TileW: 8, VecW: 4}, s)
	if cm.Predict(small) >= cm.Predict(large) {
		t.Fatalf("model failed to learn TileK ordering: %g vs %g",
			cm.Predict(small), cm.Predict(large))
	}
}

func TestCostModelUntrainedPredictsInf(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	cm := NewCostModel(s)
	if !math.IsInf(cm.Predict(DefaultSchedule(s)), 1) {
		t.Fatal("untrained model must predict +Inf")
	}
	cm.Observe(DefaultSchedule(s), 0) // non-positive times ignored
	if cm.Samples() != 0 {
		t.Fatal("zero-second observation must be rejected")
	}
}

func TestTuneWithCostModelRanksMore(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	res := Tune(s, TuneOptions{
		Population: 12, Generations: 4, Trials: 40, Threads: 1, Seed: 9,
		UseCostModel: true,
	})
	if res.ModelRanked == 0 {
		t.Fatal("cost model should have ranked extra candidates")
	}
	if !res.Best.Valid(s) {
		t.Fatalf("best schedule invalid: %v", res.Best)
	}
	// Correctness of the winner.
	checkSchedule(t, s, res.Best)
}

func TestDefaultScheduleValidForAllTable4Layers(t *testing.T) {
	for _, l := range conv.Table4 {
		for _, batch := range []int{1, 4} {
			s := l.Shape.WithBatch(batch)
			sch := DefaultSchedule(s)
			if !sch.Valid(s) {
				t.Fatalf("layer %d batch %d: default schedule %v invalid", l.ID, batch, sch)
			}
		}
	}
}
