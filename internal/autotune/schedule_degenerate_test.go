package autotune

import (
	"math"
	"math/rand"
	"testing"

	"ndirect/internal/conv"
)

// degenerateShapes are the ragged edges the clamp bugs lived on: K
// smaller than any vector width, 1×1 outputs, outputs narrower than
// VecW, single-channel inputs.
var degenerateShapes = []conv.Shape{
	{N: 1, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Str: 1, Pad: 1},   // everything minimal
	{N: 1, C: 2, H: 1, W: 1, K: 2, R: 1, S: 1, Str: 1, Pad: 0},   // 1×1 input and output
	{N: 1, C: 4, H: 5, W: 3, K: 3, R: 3, S: 3, Str: 1, Pad: 1},   // Q=3 < every VecW
	{N: 1, C: 8, H: 7, W: 7, K: 2, R: 3, S: 3, Str: 2, Pad: 1},   // K < Vk, strided
	{N: 1, C: 3, H: 9, W: 5, K: 5, R: 1, S: 1, Str: 2, Pad: 0},   // ragged strided pointwise
	{N: 1, C: 16, H: 8, W: 8, K: 64, R: 5, S: 5, Str: 1, Pad: 2}, // no 12×8 family
}

// tuneShapes is the full table-driven domain: every model-table row
// plus the degenerate edges.
func tuneShapes() []conv.Shape {
	shapes := make([]conv.Shape, 0, len(conv.Table4)+len(degenerateShapes))
	for _, l := range conv.Table4 {
		shapes = append(shapes, l.Shape.WithBatch(1))
	}
	return append(shapes, degenerateShapes...)
}

// TestDefaultScheduleValidEverywhere: the untuned fallback must be
// admissible for every model-table row and every degenerate edge.
func TestDefaultScheduleValidEverywhere(t *testing.T) {
	for _, s := range tuneShapes() {
		if sch := DefaultSchedule(s); !sch.Valid(s) {
			t.Errorf("DefaultSchedule(%v) = %v is invalid", s, sch)
		}
	}
}

// TestClampScheduleTotal: clampSchedule must return an admissible
// schedule for ANY input — including the zero value a failed tune
// leaves behind (the divide-by-zero regression) and adversarial tile
// values — on every shape in the domain.
func TestClampScheduleTotal(t *testing.T) {
	adversarial := []Schedule{
		{}, // zero value: VecW=0 used to panic when TileW > Q
		{TileK: -3, TileC: -1, TileH: -7, TileW: -12, VecW: -4},
		{TileK: 1 << 20, TileC: 1 << 20, TileH: 1 << 20, TileW: 1 << 20, VecW: 5},
		{TileK: 1, TileC: 1, TileH: 1, TileW: 7, VecW: 12}, // TileW not a multiple
		{TileK: 64, TileC: 64, TileH: 14, TileW: 96, VecW: 8, UnrollS: true, ParallelKH: true},
	}
	for _, s := range tuneShapes() {
		for _, in := range adversarial {
			sch := clampSchedule(in, s)
			if !sch.Valid(s) {
				t.Errorf("clampSchedule(%v, %v) = %v is invalid", in, s, sch)
			}
		}
	}
}

// TestClampForZeroValueNoPanic is the end-to-end regression for the
// serving-path crash: a zero-value schedule reaching ClampFor (via
// nn.Engine.Tune storing a no-trial Result.Best) must clamp to an
// admissible schedule, not divide by zero.
func TestClampForZeroValueNoPanic(t *testing.T) {
	for _, s := range tuneShapes() {
		if sch := ClampFor(Schedule{}, s); !sch.Valid(s) {
			t.Errorf("ClampFor(zero, %v) = %v is invalid", s, sch)
		}
	}
}

// TestSampledSchedulesValid: randomSchedule, mutate and crossover must
// only ever emit admissible schedules, on every shape in the domain.
func TestSampledSchedulesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range tuneShapes() {
		var prev Schedule
		for i := 0; i < 24; i++ {
			sch := randomSchedule(rng, s)
			if !sch.Valid(s) {
				t.Fatalf("randomSchedule(%v) = %v is invalid", s, sch)
			}
			if m := mutate(rng, sch, s); !m.Valid(s) {
				t.Fatalf("mutate(%v, %v) = %v is invalid", sch, s, m)
			}
			if i > 0 {
				if c := crossover(rng, prev, sch, s); !c.Valid(s) {
					t.Fatalf("crossover on %v = %v is invalid", s, c)
				}
			}
			prev = sch
		}
	}
}

// TestCostModelFeaturesFinite: every admissible schedule must produce
// finite cost-model features (the log2 terms blow up on zero tiles, so
// this is the downstream guard on clamp's totality).
func TestCostModelFeaturesFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range tuneShapes() {
		for i := 0; i < 8; i++ {
			sch := clampSchedule(randomSchedule(rng, s), s)
			for j, f := range features(s, sch) {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("features(%v, %v)[%d] = %v", s, sch, j, f)
				}
			}
		}
	}
}
