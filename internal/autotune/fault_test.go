package autotune

import (
	"errors"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
)

// An injected schedule corruption must be caught by the admissibility
// check and surface as ErrBadSchedule — before any kernel runs.
func TestScheduleCorruptInjection(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in, f, out := s.NewInput(), s.NewFilter(), s.NewOutput()
	faultinject.Arm(faultinject.ScheduleCorrupt, -1)
	err := Execute(s, DefaultSchedule(s), in, f, out, 1)
	if !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("err = %v, want ErrBadSchedule", err)
	}
	// The shot is consumed: the same schedule now executes cleanly.
	if err := Execute(s, DefaultSchedule(s), in, f, out, 1); err != nil {
		t.Fatalf("post-injection run must succeed: %v", err)
	}
}

// The tuner must skip a corrupted candidate measurement and still
// finish with a valid, correct best schedule.
func TestTuneSurvivesScheduleCorruption(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	faultinject.ArmN(faultinject.ScheduleCorrupt, -1, 2)
	res := Tune(s, TuneOptions{Population: 4, Generations: 2, Trials: 10, Threads: 1, Seed: 5})
	if res.BestSec >= 1e30 {
		t.Fatalf("tuning found no healthy candidate: %+v", res)
	}
	if !res.Best.Valid(s) {
		t.Fatalf("best schedule invalid: %v", res.Best)
	}
	faultinject.Reset()
	checkSchedule(t, s, res.Best)
}
