package autotune

import (
	"context"
	"errors"
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// ErrBadSchedule reports a schedule that is not admissible for the
// shape it is asked to execute — a tuned schedule applied to the wrong
// layer, a corrupted cache entry, or a hand-written override outside
// the knob grid.
var ErrBadSchedule = errors.New("autotune: bad schedule")

// Execute runs the scheduled direct convolution: the loop nest a TVM
// back-end would emit for an NCHW conv2d — two-level tiles, the
// innermost output-column axis vectorised, input read in place (no
// packing, no filter re-blocking: the structural gap to nDirect that
// Figure 6 measures). An inadmissible schedule returns ErrBadSchedule;
// a worker fault surfaces as the parallel runtime's error.
func Execute(s conv.Shape, sch Schedule, in, filter, out *tensor.Tensor, threads int) error {
	return ExecuteFusedCtx(context.Background(), s, sch, in, filter, out, threads, nil, false)
}

// ExecuteCtx is Execute bounded by ctx: on expiry the tile loop is
// abandoned (parallel.ErrCanceled semantics — the output must be
// treated as incomplete on any non-nil error).
func ExecuteCtx(ctx context.Context, s conv.Shape, sch Schedule, in, filter, out *tensor.Tensor, threads int) error {
	return ExecuteFusedCtx(ctx, s, sch, in, filter, out, threads, nil, false)
}

// ExecuteFused is Execute with an operator-fusion epilogue: after the
// reduction finishes for an output tile, a per-channel bias and/or
// ReLU is applied while the tile is still cache-hot — the Relay-style
// fusion that gives the Ansor configuration its end-to-end edge
// (§8.3). bias may be nil.
func ExecuteFused(s conv.Shape, sch Schedule, in, filter, out *tensor.Tensor, threads int, bias []float32, relu bool) error {
	return ExecuteFusedCtx(context.Background(), s, sch, in, filter, out, threads, bias, relu)
}

// ExecuteFusedCtx is ExecuteFused bounded by ctx (see ExecuteCtx).
func ExecuteFusedCtx(ctx context.Context, s conv.Shape, sch Schedule, in, filter, out *tensor.Tensor, threads int, bias []float32, relu bool) error {
	if err := conv.ValidateOperands(s, in, filter); err != nil {
		return err
	}
	if err := conv.ValidateOutput(s, out); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if _, ok := faultinject.Take(faultinject.ScheduleCorrupt); ok {
			sch.TileK = -1
		}
	}
	if !sch.Valid(s) {
		return fmt.Errorf("%w: %v for shape %v", ErrBadSchedule, sch, s)
	}
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p := s.P()
	hTiles := (p + sch.TileH - 1) / sch.TileH
	kTiles := (s.K + sch.TileK - 1) / sch.TileK

	if sch.ParallelKH {
		return parallel.ForCtx(ctx, s.N*kTiles, threads, func(nk int) {
			n, kt := nk/kTiles, nk%kTiles
			k0 := kt * sch.TileK
			k1 := min(k0+sch.TileK, s.K)
			execBlock(s, sch, in.Data, filter.Data, out.Data, n, k0, k1, 0, p, bias, relu)
		})
	}
	return parallel.ForCtx(ctx, s.N*hTiles, threads, func(nh int) {
		n, ht := nh/hTiles, nh%hTiles
		h0 := ht * sch.TileH
		h1 := min(h0+sch.TileH, p)
		execBlock(s, sch, in.Data, filter.Data, out.Data, n, 0, s.K, h0, h1, bias, relu)
	})
}

// ClampFor adapts a schedule tuned on one shape to another shape with
// the same layer geometry but a different batch (tiles are batch
// independent); it simply re-clamps to be safe.
func ClampFor(sch Schedule, s conv.Shape) Schedule {
	out := clampSchedule(sch, s)
	if !out.Valid(s) {
		return DefaultSchedule(s)
	}
	return out
}

// execBlock computes out[n][k0:k1][h0:h1][:] with the scheduled tile
// loops.
func execBlock(s conv.Shape, sch Schedule, in, filter, out []float32, n, k0, k1, h0, h1 int, bias []float32, relu bool) {
	p, q := s.P(), s.Q()
	rs := s.R * s.S
	for kt := k0; kt < k1; kt += sch.TileK {
		ktEnd := min(kt+sch.TileK, k1)
		for ht := h0; ht < h1; ht += sch.TileH {
			htEnd := min(ht+sch.TileH, h1)
			for wt := 0; wt < q; wt += sch.TileW {
				wtEnd := min(wt+sch.TileW, q)
				// Zero the output tile, then accumulate channel tiles.
				for k := kt; k < ktEnd; k++ {
					for oh := ht; oh < htEnd; oh++ {
						row := out[((n*s.K+k)*p+oh)*q:]
						for ow := wt; ow < wtEnd; ow++ {
							row[ow] = 0
						}
					}
				}
				for ct := 0; ct < s.C; ct += sch.TileC {
					ctEnd := min(ct+sch.TileC, s.C)
					for k := kt; k < ktEnd; k++ {
						for oh := ht; oh < htEnd; oh++ {
							convRow(s, sch, in, filter, out, n, k, oh, wt, wtEnd, ct, ctEnd, q, rs)
						}
					}
				}
				// Fused epilogue: touch the finished tile while hot.
				if bias != nil || relu {
					for k := kt; k < ktEnd; k++ {
						var b float32
						if bias != nil {
							b = bias[k]
						}
						for oh := ht; oh < htEnd; oh++ {
							row := out[((n*s.K+k)*p+oh)*q:]
							for ow := wt; ow < wtEnd; ow++ {
								v := row[ow] + b
								if relu && v < 0 {
									v = 0
								}
								row[ow] = v
							}
						}
					}
				}
			}
		}
	}
}

// convRow accumulates channels [ct, ctEnd) into one output row
// segment, vectorised over VecW output columns.
func convRow(s conv.Shape, sch Schedule, in, filter, out []float32, n, k, oh, wt, wtEnd, ct, ctEnd, q, rs int) {
	p := s.P()
	outRow := out[((n*s.K+k)*p+oh)*q:]
	ihBase := oh*s.Str - s.Pad
	vecW := sch.VecW
	nv := vecW / simd.Width

	ow := wt
	if s.Str == 1 {
		for ; ow+vecW <= wtEnd; ow += vecW {
			var acc [3]simd.Vec4 // up to VecW=12
			iwBase := ow - s.Pad
			for c := ct; c < ctEnd; c++ {
				inBase := ((n*s.C + c) * s.H) * s.W
				fBase := (k*s.C + c) * rs
				for r := 0; r < s.R; r++ {
					ih := ihBase + r
					if ih < 0 || ih >= s.H {
						continue
					}
					row := in[inBase+ih*s.W : inBase+(ih+1)*s.W]
					if sch.UnrollS && s.S == 3 {
						// Unrolled 3-tap body.
						f0 := filter[fBase+r*3]
						f1 := filter[fBase+r*3+1]
						f2 := filter[fBase+r*3+2]
						for v := 0; v < nv; v++ {
							iw := iwBase + v*simd.Width
							acc[v] = fmaTap(acc[v], row, iw, f0, s.W)
							acc[v] = fmaTap(acc[v], row, iw+1, f1, s.W)
							acc[v] = fmaTap(acc[v], row, iw+2, f2, s.W)
						}
					} else {
						for ss := 0; ss < s.S; ss++ {
							f := filter[fBase+r*s.S+ss]
							for v := 0; v < nv; v++ {
								acc[v] = fmaTap(acc[v], row, iwBase+v*simd.Width+ss, f, s.W)
							}
						}
					}
				}
			}
			for v := 0; v < nv; v++ {
				o := outRow[ow+v*simd.Width : ow+v*simd.Width+simd.Width]
				simd.Load(o).Add(acc[v]).Store(o)
			}
		}
	}
	// Scalar tail (and the whole row for strided schedules).
	for ; ow < wtEnd; ow++ {
		var acc float32
		for c := ct; c < ctEnd; c++ {
			inBase := ((n*s.C + c) * s.H) * s.W
			fBase := (k*s.C + c) * rs
			for r := 0; r < s.R; r++ {
				ih := ihBase + r
				if ih < 0 || ih >= s.H {
					continue
				}
				for ss := 0; ss < s.S; ss++ {
					iw := ow*s.Str - s.Pad + ss
					if iw < 0 || iw >= s.W {
						continue
					}
					acc += in[inBase+ih*s.W+iw] * filter[fBase+r*s.S+ss]
				}
			}
		}
		outRow[ow] += acc
	}
}

// fmaTap adds one filter tap's contribution to a 4-wide accumulator,
// guarding the image borders lane-wise.
func fmaTap(acc simd.Vec4, row []float32, iw int, f float32, w int) simd.Vec4 {
	if iw >= 0 && iw+simd.Width <= w {
		return acc.FMAScalar(simd.Load(row[iw:]), f)
	}
	var v simd.Vec4
	for lane := 0; lane < simd.Width; lane++ {
		if x := iw + lane; x >= 0 && x < w {
			v[lane] = row[x]
		}
	}
	return acc.FMAScalar(v, f)
}
