// Package parallel provides the OpenMP-style static work partitioning
// the paper uses (§6): a fixed pool of PT workers, static chunking of
// loop ranges, and the two-dimensional PTk × PTn thread grid that
// nDirect maps onto the K and N/H/W convolution dimensions.
//
// The paper spawns one OpenMP thread per physical core. Here workers
// are goroutines; on a multi-core host they execute concurrently, on a
// single-core host they interleave (the harness uses the machine model
// for multi-core projections either way).
//
// Unlike OpenMP, the runtime is fault tolerant: a panic inside a
// worker body is recovered, converted into a *PanicError (carrying
// the panic value and stack) and returned as the loop's error instead
// of crashing the process. After the first fault, the remaining
// chunks observe a cooperative stop flag and cancel: For stops
// between body invocations, ForRange/ForGrid before each not-yet-
// started chunk. Only the first fault is reported.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ndirect/internal/faultinject"
)

// DefaultThreads returns the worker count matching the paper's policy
// of one thread per available core.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// ErrWorkerPanic is the sentinel wrapped by every *PanicError, so
// callers can classify recovered worker faults with errors.Is.
var ErrWorkerPanic = errors.New("parallel: worker panicked")

// PanicError is a worker panic recovered by the runtime: the original
// panic value plus the stack of the panicking goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap ties every recovered panic to ErrWorkerPanic.
func (e *PanicError) Unwrap() error { return ErrWorkerPanic }

// Protect runs fn in the calling goroutine, converting a panic into a
// *PanicError. It is the recovery primitive the loop drivers (and the
// core thread grid) build on.
func Protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// FaultSink collects the first fault of a worker group and exposes
// the cooperative stop flag the surviving workers poll. A sink can be
// Reset between runs, so pooled execution state reuses one sink per
// slot instead of allocating a fresh one per call.
type FaultSink struct {
	stop atomic.Bool
	mu   sync.Mutex
	set  bool
	err  error
}

// Record stores err as the group's fault if it is the first, and
// raises the stop flag. nil errors are ignored.
func (f *FaultSink) Record(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if !f.set {
		f.set = true
		f.err = err
	}
	f.mu.Unlock()
	f.stop.Store(true)
}

// Stopped reports whether a fault has been recorded (workers poll
// this between work items).
func (f *FaultSink) Stopped() bool { return f.stop.Load() }

// Err returns the first recorded fault. Only valid after the worker
// group has been joined.
func (f *FaultSink) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Reset clears the sink for reuse. Only valid once the previous run's
// workers have been joined.
func (f *FaultSink) Reset() {
	f.mu.Lock()
	f.set = false
	f.err = nil
	f.mu.Unlock()
	f.stop.Store(false)
}

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split statically partitions [0, n) into at most p near-equal
// contiguous chunks (OpenMP schedule(static)). The first n%p chunks
// are one element longer. Fewer than p chunks are returned when n < p.
func Split(n, p int) []Range {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if n <= 0 {
		return nil
	}
	chunks := make([]Range, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Range{lo, lo + size})
		lo += size
	}
	return chunks
}

// For runs body(i) for every i in [0, n) across p workers with static
// partitioning. Workers share nothing but the index range, matching
// the paper's write-conflict-free mapping (no parallelisation over
// the reduction dimensions C, R, S).
//
// A panic inside body is recovered and returned as a *PanicError
// (wrapping ErrWorkerPanic); the remaining workers stop before their
// next body invocation, so the caller must treat the output as
// incomplete whenever the error is non-nil.
func For(n, p int, body func(i int)) error {
	chunks := Split(n, p)
	if len(chunks) == 0 {
		return nil
	}
	var fs FaultSink
	runChunk := func(w int, c Range) {
		fs.Record(Protect(func() {
			faultinject.Fire(faultinject.WorkerPanic, w)
			faultinject.Stall(faultinject.WorkerStall, w)
			for i := c.Lo; i < c.Hi; i++ {
				if fs.Stopped() {
					return
				}
				body(i)
			}
		}))
	}
	if len(chunks) == 1 {
		runChunk(0, chunks[0])
		return fs.Err()
	}
	var g Group
	pool := DefaultPool()
	for w, c := range chunks[1:] {
		w, c := w+1, c
		g.GoVia(pool, func() { runChunk(w, c) })
	}
	runChunk(0, chunks[0])
	g.Wait()
	return fs.Err()
}

// ForRange runs body(lo, hi) once per worker chunk — used when the
// body wants to amortise per-chunk setup (thread-private packing
// buffers, filter transform scratch) across its whole range, as the
// nDirect driver does. Panic recovery and error propagation follow
// For; cancellation is chunk-grained, since the body owns its whole
// range.
func ForRange(n, p int, body func(worker int, r Range)) error {
	chunks := Split(n, p)
	if len(chunks) == 0 {
		return nil
	}
	var fs FaultSink
	runChunk := func(w int, c Range) {
		fs.Record(Protect(func() {
			faultinject.Fire(faultinject.WorkerPanic, w)
			faultinject.Stall(faultinject.WorkerStall, w)
			if fs.Stopped() {
				return
			}
			body(w, c)
		}))
	}
	if len(chunks) == 1 {
		runChunk(0, chunks[0])
		return fs.Err()
	}
	var g Group
	pool := DefaultPool()
	for w, c := range chunks[1:] {
		w, c := w+1, c
		g.GoVia(pool, func() { runChunk(w, c) })
	}
	runChunk(0, chunks[0])
	g.Wait()
	return fs.Err()
}

// MustFor is For for callers that keep the legacy crash-on-fault
// semantics (reference baselines, elementwise passes): a recovered
// worker fault is re-raised as a panic in the caller instead of being
// returned.
func MustFor(n, p int, body func(i int)) {
	if err := For(n, p, body); err != nil {
		panic(err)
	}
}

// MustForRange is ForRange with MustFor's crash-on-fault semantics.
func MustForRange(n, p int, body func(worker int, r Range)) {
	if err := ForRange(n, p, body); err != nil {
		panic(err)
	}
}

// Grid2D describes the two-level thread grid of §6.1: PTk workers
// along the output-channel dimension times PTn workers along the
// batch/spatial dimensions, PTk*PTn = PT.
type Grid2D struct {
	PTk, PTn int
}

// Workers returns the total worker count of the grid.
func (g Grid2D) Workers() int { return g.PTk * g.PTn }

// ForGrid runs body(kWorker, nWorker) for every cell of the grid
// concurrently. The body typically slices K by kWorker and N×H×W by
// nWorker. Panic recovery, error propagation and chunk-grained
// cancellation follow ForRange.
func (g Grid2D) ForGrid(body func(kWorker, nWorker int)) error {
	total := g.Workers()
	var fs FaultSink
	runCell := func(w, k, n int) {
		fs.Record(Protect(func() {
			faultinject.Fire(faultinject.WorkerPanic, w)
			faultinject.Stall(faultinject.WorkerStall, w)
			if fs.Stopped() {
				return
			}
			body(k, n)
		}))
	}
	if total <= 1 {
		runCell(0, 0, 0)
		return fs.Err()
	}
	var grp Group
	pool := DefaultPool()
	first := true
	for k := 0; k < g.PTk; k++ {
		for n := 0; n < g.PTn; n++ {
			if first {
				first = false
				continue
			}
			w, k, n := k*g.PTn+n, k, n
			grp.GoVia(pool, func() { runCell(w, k, n) })
		}
	}
	runCell(0, 0, 0)
	grp.Wait()
	return fs.Err()
}

// Factorize returns all (a, b) pairs with a*b == p, a ascending. Used
// by the thread-mapping solver to enumerate PTk × PTn candidates.
func Factorize(p int) [][2]int {
	var out [][2]int
	for a := 1; a <= p; a++ {
		if p%a == 0 {
			out = append(out, [2]int{a, p / a})
		}
	}
	return out
}
