// Package parallel provides the OpenMP-style static work partitioning
// the paper uses (§6): a fixed pool of PT workers, static chunking of
// loop ranges, and the two-dimensional PTk × PTn thread grid that
// nDirect maps onto the K and N/H/W convolution dimensions.
//
// The paper spawns one OpenMP thread per physical core. Here workers
// are goroutines; on a multi-core host they execute concurrently, on a
// single-core host they interleave (the harness uses the machine model
// for multi-core projections either way).
package parallel

import (
	"runtime"
	"sync"
)

// DefaultThreads returns the worker count matching the paper's policy
// of one thread per available core.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split statically partitions [0, n) into at most p near-equal
// contiguous chunks (OpenMP schedule(static)). The first n%p chunks
// are one element longer. Fewer than p chunks are returned when n < p.
func Split(n, p int) []Range {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if n <= 0 {
		return nil
	}
	chunks := make([]Range, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Range{lo, lo + size})
		lo += size
	}
	return chunks
}

// For runs body(i) for every i in [0, n) across p workers with static
// partitioning. body must not panic; workers share nothing but the
// index range, matching the paper's write-conflict-free mapping (no
// parallelisation over the reduction dimensions C, R, S).
func For(n, p int, body func(i int)) {
	chunks := Split(n, p)
	if len(chunks) <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(chunks) - 1)
	for _, c := range chunks[1:] {
		go func(c Range) {
			defer wg.Done()
			for i := c.Lo; i < c.Hi; i++ {
				body(i)
			}
		}(c)
	}
	for i := chunks[0].Lo; i < chunks[0].Hi; i++ {
		body(i)
	}
	wg.Wait()
}

// ForRange runs body(lo, hi) once per worker chunk — used when the
// body wants to amortise per-chunk setup (thread-private packing
// buffers, filter transform scratch) across its whole range, as the
// nDirect driver does.
func ForRange(n, p int, body func(worker int, r Range)) {
	chunks := Split(n, p)
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		body(0, chunks[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(chunks) - 1)
	for w, c := range chunks[1:] {
		go func(w int, c Range) {
			defer wg.Done()
			body(w, c)
		}(w+1, c)
	}
	body(0, chunks[0])
	wg.Wait()
}

// Grid2D describes the two-level thread grid of §6.1: PTk workers
// along the output-channel dimension times PTn workers along the
// batch/spatial dimensions, PTk*PTn = PT.
type Grid2D struct {
	PTk, PTn int
}

// Workers returns the total worker count of the grid.
func (g Grid2D) Workers() int { return g.PTk * g.PTn }

// ForGrid runs body(kWorker, nWorker) for every cell of the grid
// concurrently. The body typically slices K by kWorker and N×H×W by
// nWorker.
func (g Grid2D) ForGrid(body func(kWorker, nWorker int)) {
	total := g.Workers()
	if total <= 1 {
		body(0, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(total - 1)
	first := true
	for k := 0; k < g.PTk; k++ {
		for n := 0; n < g.PTn; n++ {
			if first {
				first = false
				continue
			}
			go func(k, n int) {
				defer wg.Done()
				body(k, n)
			}(k, n)
		}
	}
	body(0, 0)
	wg.Wait()
}

// Factorize returns all (a, b) pairs with a*b == p, a ascending. Used
// by the thread-mapping solver to enumerate PTk × PTn candidates.
func Factorize(p int) [][2]int {
	var out [][2]int
	for a := 1; a <= p; a++ {
		if p%a == 0 {
			out = append(out, [2]int{a, p / a})
		}
	}
	return out
}
