package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ndirect/internal/faultinject"
)

// Context-aware loop drivers. The bare drivers (For, ForRange,
// ForGrid) join their workers with a plain WaitGroup, so one wedged
// worker blocks the caller forever — acceptable for a benchmark
// harness, not for a serving system. The *Ctx variants bound that
// join: when the context expires or is canceled before the grid
// finishes, the driver raises the group's cooperative stop flag,
// abandons the join (the wedged goroutines are leaked deliberately and
// accounted in LeakedWorkers until they terminate) and returns an
// error wrapping ErrCanceled plus the context's cause, so callers can
// classify with errors.Is(err, context.DeadlineExceeded).
//
// A context with no Done channel (Background, TODO) costs nothing:
// the *Ctx drivers delegate to the bare ones.

// ErrCanceled is the sentinel wrapped by every error the context-aware
// drivers return for an abandoned worker group. The returned errors
// also wrap the context's cause (context.DeadlineExceeded or
// context.Canceled).
var ErrCanceled = errors.New("parallel: work abandoned on cancellation")

// leakedWorkers counts goroutines abandoned by detached joins that
// have not yet terminated (here and in the core thread grid).
var leakedWorkers atomic.Int64

// LeakedWorkers reports the number of worker goroutines abandoned by
// expired-context joins that are still running. It returns to zero
// once the wedged workers terminate (e.g. after faultinject.Reset
// releases a worker-stall); a persistently positive value means truly
// wedged goroutines. The count is a snapshot and may transiently
// overcount workers that finished during the abandonment itself.
func LeakedWorkers() int64 { return leakedWorkers.Load() }

// cancelErr wraps the context's cause in ErrCanceled.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// Group tracks a spawned worker group for a context-bounded join. The
// zero value is ready to use. It is the building block the *Ctx
// drivers here and the core thread grid share.
type Group struct {
	wg      sync.WaitGroup
	pending atomic.Int64
}

// finish marks one tracked task complete. It is called by the worker
// side of every dispatch path (pool handoff or spawned goroutine).
func (g *Group) finish() {
	g.pending.Add(-1)
	g.wg.Done()
}

// Go runs fn in a tracked goroutine. fn is responsible for its own
// panic recovery (the drivers wrap bodies in Protect).
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	g.pending.Add(1)
	go func() {
		defer g.finish()
		fn()
	}()
}

// GoVia runs fn as a tracked task, handing it to a parked worker of
// pool when one is idle and spawning a plain goroutine otherwise (the
// pre-pool behaviour — so an exhausted or closed pool degrades, never
// deadlocks, and nested parallel regions cannot wedge each other). fn
// is responsible for its own panic recovery.
func (g *Group) GoVia(pool *Pool, fn func()) {
	g.wg.Add(1)
	g.pending.Add(1)
	if pool != nil && pool.tryRun(poolTask{fn: fn, g: g}) {
		return
	}
	if pool != nil {
		pool.spawned.Add(1)
	}
	go func() {
		defer g.finish()
		fn()
	}()
}

// Wait joins the group unconditionally (the bare drivers' join).
func (g *Group) Wait() { g.wg.Wait() }

// WaitCtx joins the group, bounded by ctx. It returns nil when every
// worker finished, or an error wrapping ErrCanceled (and the context's
// cause) when ctx expired first.
//
// On abandonment, onAbandon (if non-nil) runs synchronously with the
// abandonment error before WaitCtx returns — the hook the callers use
// to raise their stop flag so surviving workers cancel at their next
// poll. The abandoned workers are counted in LeakedWorkers until they
// terminate, after which drain (if non-nil) runs on the detached
// monitor goroutine — the hook the core grid uses to recycle run state
// only once no abandoned worker can still touch it. On a nil return
// neither hook runs: every worker has finished and the caller owns all
// run state again, so it performs its own release inline.
func (g *Group) WaitCtx(ctx context.Context, onAbandon func(error), drain func()) error {
	if ctx == nil || ctx.Done() == nil {
		g.wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		err := cancelErr(ctx)
		if onAbandon != nil {
			onAbandon(err)
		}
		n := g.pending.Load()
		leakedWorkers.Add(n)
		go func() {
			<-done
			leakedWorkers.Add(-n)
			if drain != nil {
				drain()
			}
		}()
		return err
	}
}

// ForCtx is For bounded by ctx: body(i) runs for every i in [0, n)
// across p workers unless the context expires first, in which case the
// remaining chunks cancel cooperatively, any wedged worker is
// abandoned, and the returned error wraps ErrCanceled and the
// context's cause. The output must be treated as incomplete whenever
// the error is non-nil.
func ForCtx(ctx context.Context, n, p int, body func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		return For(n, p, body)
	}
	if ctx.Err() != nil {
		return cancelErr(ctx)
	}
	chunks := Split(n, p)
	if len(chunks) == 0 {
		return nil
	}
	var fs FaultSink
	var g Group
	pool := DefaultPool()
	for w, c := range chunks {
		w, c := w, c
		g.GoVia(pool, func() {
			fs.Record(Protect(func() {
				faultinject.Fire(faultinject.WorkerPanic, w)
				faultinject.Stall(faultinject.WorkerStall, w)
				for i := c.Lo; i < c.Hi; i++ {
					if fs.Stopped() {
						return
					}
					body(i)
				}
			}))
		})
	}
	if err := g.WaitCtx(ctx, fs.Record, nil); err != nil {
		return err
	}
	return fs.Err()
}

// ForRangeCtx is ForRange bounded by ctx; cancellation is
// chunk-grained like ForRange's fault cancellation, but a wedged chunk
// no longer blocks the join.
func ForRangeCtx(ctx context.Context, n, p int, body func(worker int, r Range)) error {
	if ctx == nil || ctx.Done() == nil {
		return ForRange(n, p, body)
	}
	if ctx.Err() != nil {
		return cancelErr(ctx)
	}
	chunks := Split(n, p)
	if len(chunks) == 0 {
		return nil
	}
	var fs FaultSink
	var g Group
	pool := DefaultPool()
	for w, c := range chunks {
		w, c := w, c
		g.GoVia(pool, func() {
			fs.Record(Protect(func() {
				faultinject.Fire(faultinject.WorkerPanic, w)
				faultinject.Stall(faultinject.WorkerStall, w)
				if fs.Stopped() {
					return
				}
				body(w, c)
			}))
		})
	}
	if err := g.WaitCtx(ctx, fs.Record, nil); err != nil {
		return err
	}
	return fs.Err()
}

// ForGridCtx is ForGrid bounded by ctx.
func (gr Grid2D) ForGridCtx(ctx context.Context, body func(kWorker, nWorker int)) error {
	if ctx == nil || ctx.Done() == nil {
		return gr.ForGrid(body)
	}
	if ctx.Err() != nil {
		return cancelErr(ctx)
	}
	var fs FaultSink
	var g Group
	pool := DefaultPool()
	for k := 0; k < gr.PTk; k++ {
		for n := 0; n < gr.PTn; n++ {
			w, k, n := k*gr.PTn+n, k, n
			g.GoVia(pool, func() {
				fs.Record(Protect(func() {
					faultinject.Fire(faultinject.WorkerPanic, w)
					faultinject.Stall(faultinject.WorkerStall, w)
					if fs.Stopped() {
						return
					}
					body(k, n)
				}))
			})
		}
	}
	if err := g.WaitCtx(ctx, fs.Record, nil); err != nil {
		return err
	}
	return fs.Err()
}
