package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ndirect/internal/faultinject"
)

func TestProtectPassesThrough(t *testing.T) {
	ran := false
	if err := Protect(func() { ran = true }); err != nil || !ran {
		t.Fatalf("err = %v, ran = %v", err, ran)
	}
}

func TestProtectConvertsPanic(t *testing.T) {
	err := Protect(func() { panic("boom") })
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "boom") {
		t.Fatal("PanicError must carry the stack and the panic value")
	}
}

func TestFaultSinkKeepsFirstError(t *testing.T) {
	var fs FaultSink
	if fs.Stopped() || fs.Err() != nil {
		t.Fatal("zero FaultSink must be clean")
	}
	fs.Record(nil)
	if fs.Stopped() {
		t.Fatal("nil record must not stop")
	}
	first := errors.New("first")
	fs.Record(first)
	fs.Record(errors.New("second"))
	if !fs.Stopped() || fs.Err() != first {
		t.Fatalf("Err() = %v, want the first error", fs.Err())
	}
}

func TestForWorkerPanicBecomesError(t *testing.T) {
	err := For(100, 4, func(i int) {
		if i == 42 {
			panic("worker 42 died")
		}
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "worker 42 died" {
		t.Fatalf("err = %v", err)
	}
}

func TestForNilErrorWhenHealthy(t *testing.T) {
	var sum int64
	if err := For(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if sum != 99*100/2 {
		t.Fatalf("sum = %d", sum)
	}
}

// A panic in one chunk cancels the surviving chunks between body
// invocations: the caller-goroutine chunk runs exactly one item after
// the panicking goroutine has released it, then observes the stop flag.
func TestForCancelsSurvivorsAfterPanic(t *testing.T) {
	const n, p = 100, 2 // chunk 0 = [0,50) on the caller, chunk 1 = [50,100) on a goroutine
	ready := make(chan struct{})
	var visited0 int64
	err := For(n, p, func(i int) {
		if i >= 50 {
			// Goroutine chunk: release the caller, then die on the
			// first item.
			close(ready)
			panic("early death")
		}
		if i == 0 {
			// Caller chunk: wait until the sibling is about to panic,
			// then give the recovery ample time to record the fault.
			<-ready
			time.Sleep(50 * time.Millisecond)
		}
		atomic.AddInt64(&visited0, 1)
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
	if v := atomic.LoadInt64(&visited0); v >= 50 {
		t.Fatalf("surviving chunk ran all %d items; cancellation never engaged", v)
	}
}

func TestForRangeWorkerPanicBecomesError(t *testing.T) {
	err := ForRange(64, 4, func(w int, r Range) {
		if w == 2 {
			panic("range worker died")
		}
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
}

func TestForGridWorkerPanicBecomesError(t *testing.T) {
	g := Grid2D{PTk: 2, PTn: 3}
	err := g.ForGrid(func(k, n int) {
		if k == 1 && n == 2 {
			panic("grid cell died")
		}
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v", err)
	}
}

func TestMustForRethrows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFor must re-raise the worker fault")
		}
	}()
	MustFor(10, 2, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

// The runtime's own fault-injection hook: arming worker-panic makes a
// chosen worker die without any cooperation from the body.
func TestForFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerPanic, 1)
	err := For(100, 4, func(i int) {})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want injected worker panic", err)
	}
	// The shot is consumed: the next run is healthy.
	if err := For(100, 4, func(i int) {}); err != nil {
		t.Fatalf("second run must be clean, got %v", err)
	}
}
