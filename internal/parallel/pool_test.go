package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndirect/internal/faultinject"
)

// A parked worker must pick up dispatched tasks; the caller's join
// sees every one complete.
func TestPoolDispatchesToParkedWorkers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var g Group
	var count atomic.Int64
	for i := 0; i < 64; i++ {
		g.GoVia(p, func() { count.Add(1) })
	}
	g.Wait()
	if count.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", count.Load())
	}
	st := p.Stats()
	if st.Dispatched+st.Spawned != 64 {
		t.Fatalf("dispatched %d + spawned %d, want 64 total", st.Dispatched, st.Spawned)
	}
	if st.Dispatched == 0 {
		t.Fatal("no task ever reached a parked worker")
	}
}

// When every worker is busy, dispatch must fall back to spawning
// instead of blocking or queueing behind the busy workers.
func TestPoolSpawnFallbackWhenSaturated(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	var g Group
	g.GoVia(p, func() { <-block }) // may land on the worker or spawn
	// Give the handoff a moment so the single worker is busy.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	var g2 Group
	g2.GoVia(p, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("task queued behind a busy worker instead of spawning")
	}
	close(block)
	g.Wait()
	g2.Wait()
}

// Dispatch after Close must degrade to spawning, not panic on the
// closed channel, and Close must be idempotent.
func TestPoolCloseDegradesToSpawn(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
	var g Group
	var ran atomic.Bool
	g.GoVia(p, func() { ran.Store(true) })
	g.Wait()
	if !ran.Load() {
		t.Fatal("task did not run after Close")
	}
	if st := p.Stats(); st.Dispatched != 0 || st.Spawned != 1 {
		t.Fatalf("stats = %+v, want 0 dispatched / 1 spawned", st)
	}
}

// Concurrent dispatchers sharing one pool must not lose or duplicate
// tasks (run under -race in CI).
func TestPoolConcurrentDispatchers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var g Group
			for i := 0; i < 100; i++ {
				g.GoVia(p, func() { count.Add(1) })
			}
			g.Wait()
		}()
	}
	wg.Wait()
	if count.Load() != 800 {
		t.Fatalf("ran %d tasks, want 800", count.Load())
	}
}

// A pool worker wedged on a stalled task and abandoned by a deadline
// must be accounted in LeakedWorkers, must not wedge the pool for
// later callers, and the accounting must drain once the stall lifts —
// the pool-era version of the detached-join regression tests.
func TestPoolWorkerAbandonedByDeadlineDrains(t *testing.T) {
	defer faultinject.Reset()
	prev := SetDefaultPool(NewPool(4))
	defer func() { SetDefaultPool(prev).Close() }()

	faultinject.Arm(faultinject.WorkerStall, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := ForRangeCtx(ctx, 64, 4, func(w int, r Range) {})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if LeakedWorkers() == 0 {
		t.Fatal("the wedged pool worker must be accounted as leaked")
	}

	// The pool must still serve other callers while one slot is wedged.
	var count atomic.Int64
	if err := For(256, 4, func(i int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 256 {
		t.Fatalf("ran %d iterations with a wedged slot, want 256", count.Load())
	}

	faultinject.Reset()
	waitLeakedWorkersZero(t)
}

// After the default pool warms up, bare loops must not create new
// goroutines per call: every chunk lands on a parked worker.
func TestDefaultPoolSteadyStateNoSpawns(t *testing.T) {
	prev := SetDefaultPool(NewPool(8))
	defer func() { SetDefaultPool(prev).Close() }()
	p := DefaultPool()

	// Warm up, then measure.
	for i := 0; i < 4; i++ {
		MustFor(64, 4, func(int) {})
	}
	before := p.Stats().Spawned
	for i := 0; i < 32; i++ {
		MustFor(64, 4, func(int) {})
	}
	if after := p.Stats().Spawned; after != before {
		t.Fatalf("steady-state loops spawned %d goroutines, want 0", after-before)
	}
}
