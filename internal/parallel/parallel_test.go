package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitExact(t *testing.T) {
	chunks := Split(10, 2)
	if len(chunks) != 2 || chunks[0] != (Range{0, 5}) || chunks[1] != (Range{5, 10}) {
		t.Fatalf("chunks = %v", chunks)
	}
}

func TestSplitRemainderGoesToFirstChunks(t *testing.T) {
	chunks := Split(10, 3)
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", chunks, want)
		}
	}
}

func TestSplitFewerItemsThanWorkers(t *testing.T) {
	chunks := Split(2, 8)
	if len(chunks) != 2 {
		t.Fatalf("expected 2 chunks, got %v", chunks)
	}
}

func TestSplitDegenerate(t *testing.T) {
	if Split(0, 4) != nil {
		t.Fatal("empty range must give no chunks")
	}
	chunks := Split(5, 0) // p clamps to 1
	if len(chunks) != 1 || chunks[0] != (Range{0, 5}) {
		t.Fatalf("chunks = %v", chunks)
	}
}

// Property: Split covers [0,n) exactly once, in order, with balanced
// sizes (max-min <= 1).
func TestSplitCoverageProperty(t *testing.T) {
	f := func(n, p uint8) bool {
		chunks := Split(int(n), int(p))
		pos := 0
		minLen, maxLen := 1<<30, 0
		for _, c := range chunks {
			if c.Lo != pos || c.Hi < c.Lo {
				return false
			}
			pos = c.Hi
			if c.Len() < minLen {
				minLen = c.Len()
			}
			if c.Len() > maxLen {
				maxLen = c.Len()
			}
		}
		if pos != int(n) {
			return false
		}
		return len(chunks) == 0 || maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	For(n, 7, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForSingleWorkerSequential(t *testing.T) {
	order := []int{}
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker must run in order, got %v", order)
		}
	}
}

func TestForRangeCoversAll(t *testing.T) {
	const n = 97
	var total int64
	var workers int32
	ForRange(n, 4, func(w int, r Range) {
		atomic.AddInt32(&workers, 1)
		atomic.AddInt64(&total, int64(r.Len()))
	})
	if total != n {
		t.Fatalf("covered %d of %d", total, n)
	}
	if workers != 4 {
		t.Fatalf("expected 4 workers, got %d", workers)
	}
}

func TestForRangeEmpty(t *testing.T) {
	called := false
	ForRange(0, 4, func(w int, r Range) { called = true })
	if called {
		t.Fatal("empty range must not invoke body")
	}
}

func TestGrid2DCoversAllCells(t *testing.T) {
	g := Grid2D{PTk: 3, PTn: 4}
	if g.Workers() != 12 {
		t.Fatal("Workers")
	}
	var mask [3][4]int32
	g.ForGrid(func(k, n int) { atomic.AddInt32(&mask[k][n], 1) })
	for k := 0; k < 3; k++ {
		for n := 0; n < 4; n++ {
			if mask[k][n] != 1 {
				t.Fatalf("cell (%d,%d) visited %d times", k, n, mask[k][n])
			}
		}
	}
}

func TestGrid2DSingleCell(t *testing.T) {
	g := Grid2D{PTk: 1, PTn: 1}
	calls := 0
	g.ForGrid(func(k, n int) { calls++ })
	if calls != 1 {
		t.Fatal("1x1 grid must call body exactly once")
	}
}

func TestFactorize(t *testing.T) {
	got := Factorize(12)
	want := [][2]int{{1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {12, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: every Factorize pair multiplies back to p.
func TestFactorizeProperty(t *testing.T) {
	f := func(p uint8) bool {
		if p == 0 {
			return true
		}
		for _, ab := range Factorize(int(p)) {
			if ab[0]*ab[1] != int(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Fatal("DefaultThreads must be >= 1")
	}
}
