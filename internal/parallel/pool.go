package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of persistent worker goroutines the loop drivers
// dispatch chunks onto instead of spawning a goroutine per call. The
// paper's runtime is an OpenMP thread team — one thread per core,
// created once, parked between parallel regions — and a serving
// process wants the same steady state: after warm-up, a convolution
// call wakes existing workers (a channel handoff, the Go analogue of a
// futex wake) and creates nothing.
//
// Dispatch is reservation-based: an idle counter tracks workers that
// are parked or about to park, a dispatcher atomically reserves one
// slot before sending, and restores it and reports failure when none
// is free. The reservation guarantees every sent task has a live
// worker that will pick it up, so work is never queued behind a busy —
// or wedged — worker. When no slot is free (every worker running, or a
// slot held by a stalled task that a deadline join has abandoned), the
// drivers fall back to spawning a plain goroutine, exactly the
// pre-pool behaviour: a leaked worker therefore costs its own slot
// until it terminates but can never wedge the pool or delay other
// callers' work. Once the wedged task finally returns, the slot heals;
// if it never returns, the goroutine stays accounted in LeakedWorkers
// (the join that abandoned it tracks the task, pooled or spawned,
// identically).
//
// A Pool is safe for concurrent use. Close lets every worker exit
// after its current task; it never blocks on a wedged slot.
type Pool struct {
	mu      sync.RWMutex
	tasks   chan poolTask
	workers int
	closed  bool

	// idle counts workers parked in receive or about to park (a worker
	// re-arms its slot the moment its task completes, before looping
	// back to the channel, so back-to-back calls redispatch without
	// waiting for the physical re-park). Dispatchers reserve a slot by
	// decrementing; the buffered channel (cap = workers) then absorbs
	// the handoff even if the reserved worker has not parked yet.
	idle atomic.Int64

	dispatched atomic.Uint64 // tasks handed to a pool worker
	spawned    atomic.Uint64 // tasks that fell back to a fresh goroutine
}

// poolTask is one dispatched work unit: the function to run and the
// Group tracking its join. The struct travels by value through the
// task channel, so dispatch allocates nothing.
type poolTask struct {
	fn func()
	g  *Group
}

// NewPool starts a pool of n workers (n <= 0 selects DefaultThreads,
// the paper's one-worker-per-core policy).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = DefaultThreads()
	}
	p := &Pool{tasks: make(chan poolTask, n), workers: n}
	p.idle.Store(int64(n))
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// worker parks in receive until a task is handed over, runs it, and
// parks again; it exits when the pool is closed (draining any tasks
// still buffered first, so Close never strands a dispatched task).
func (p *Pool) worker() {
	for t := range p.tasks {
		p.runTask(t)
	}
}

// runTask executes one task, re-arming the idle slot and marking the
// group finished even if fn panics (a panic then propagates and
// crashes the process — the same contract as a spawned
// `go func() { defer g.finish(); fn() }()`; the drivers always wrap
// bodies in Protect, so this never fires in practice). The idle
// increment precedes finish so that a caller unblocked by the join can
// immediately re-dispatch onto this slot.
func (p *Pool) runTask(t poolTask) {
	defer func() {
		p.idle.Add(1)
		if t.g != nil {
			t.g.finish()
		}
	}()
	t.fn()
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// tryRun hands t to a pool worker, reporting false when no slot is
// free or the pool is closed (the caller then spawns). A reservation
// taken here is released by runTask when the task completes, or never
// — by design — if the task wedges its worker.
func (p *Pool) tryRun(t poolTask) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if p.idle.Add(-1) < 0 {
		p.idle.Add(1)
		return false
	}
	p.tasks <- t // cannot block: the reservation guarantees buffer room
	p.dispatched.Add(1)
	return true
}

// Close shuts the pool down: workers exit once the channel drains (so
// already-dispatched tasks still run). Dispatch after Close falls back
// to spawning, so in-flight drivers keep working. Close is idempotent
// and never blocks on a wedged worker.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// PoolStats is a point-in-time snapshot of a pool's dispatch counters.
type PoolStats struct {
	// Workers is the configured worker count.
	Workers int
	// Dispatched counts tasks handed to a pool worker.
	Dispatched uint64
	// Spawned counts tasks that found no free slot and fell back to a
	// fresh goroutine (overflow under concurrent callers, or slots held
	// by abandoned tasks). A steady-state serving process should see
	// this stay flat once warm.
	Spawned uint64
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    p.workers,
		Dispatched: p.dispatched.Load(),
		Spawned:    p.spawned.Load(),
	}
}

// defaultPool is the process-wide pool the loop drivers dispatch onto,
// started lazily on first use.
var defaultPool atomic.Pointer[Pool]

// DefaultPool returns the process-wide worker pool, starting it on
// first use with one worker per GOMAXPROCS. Every loop driver (For,
// ForRange, ForGrid and their Ctx forms) and the core thread grid
// dispatch onto it, so a steady-state serving process wakes the same
// parked goroutines call after call instead of spawning fresh ones.
func DefaultPool() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := NewPool(runtime.GOMAXPROCS(0))
	if defaultPool.CompareAndSwap(nil, p) {
		return p
	}
	p.Close() // lost the race; use the winner's pool
	return defaultPool.Load()
}

// SetDefaultPool replaces the process-wide pool (e.g. to resize it for
// a deployment) and returns the previous one, which the caller owns —
// close it once no in-flight driver can still dispatch onto it. A nil
// argument is invalid.
func SetDefaultPool(p *Pool) *Pool {
	if p == nil {
		panic("parallel: SetDefaultPool(nil)")
	}
	return defaultPool.Swap(p)
}
