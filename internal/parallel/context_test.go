package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ndirect/internal/faultinject"
)

// waitLeakedWorkersZero polls LeakedWorkers until it drains or the
// deadline passes — abandoned goroutines terminate asynchronously
// after faultinject.Reset releases them.
func waitLeakedWorkersZero(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if LeakedWorkers() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("LeakedWorkers stuck at %d", LeakedWorkers())
}

// A context with no Done channel must take the plain path and run the
// full loop.
func TestForCtxBackgroundRunsEverything(t *testing.T) {
	var count atomic.Int64
	if err := ForCtx(context.Background(), 100, 4, func(i int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d iterations, want 100", count.Load())
	}
}

// An already-expired context must fail fast without spawning workers.
func TestForCtxAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := ForCtx(ctx, 10, 2, func(i int) { ran.Store(true) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must wrap the context cause", err)
	}
	if ran.Load() {
		t.Fatal("no body may run on an expired context")
	}
}

// A stalled worker must not wedge the join: the deadline abandons it,
// the error classifies as DeadlineExceeded, and the leaked goroutine
// is accounted until Reset releases it.
func TestForCtxAbandonsStalledWorker(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerStall, 0)

	const budget = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	err := ForCtx(ctx, 64, 4, func(i int) {})
	elapsed := time.Since(start)

	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("join returned after %v, want ≲2×%v", elapsed, budget)
	}
	if LeakedWorkers() == 0 {
		t.Fatal("the wedged worker must be accounted as leaked")
	}
	faultinject.Reset()
	waitLeakedWorkersZero(t)
}

func TestForRangeCtxAbandonsStalledWorker(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerStall, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := ForRangeCtx(ctx, 64, 4, func(w int, r Range) {})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	faultinject.Reset()
	waitLeakedWorkersZero(t)
}

func TestForGridCtxAbandonsStalledWorker(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerStall, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	g := Grid2D{PTk: 2, PTn: 2}
	err := g.ForGridCtx(ctx, func(k, n int) {})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	faultinject.Reset()
	waitLeakedWorkersZero(t)
}

// Without faults or deadline pressure the *Ctx drivers behave exactly
// like the bare ones.
func TestCtxDriversCompleteUnderGenerousDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var count atomic.Int64
	if err := ForCtx(ctx, 128, 4, func(i int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 128 {
		t.Fatalf("ForCtx ran %d iterations, want 128", count.Load())
	}
	covered := make([]atomic.Bool, 64)
	if err := ForRangeCtx(ctx, 64, 4, func(w int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			covered[i].Store(true)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range covered {
		if !covered[i].Load() {
			t.Fatalf("index %d not covered", i)
		}
	}
	var cells atomic.Int64
	g := Grid2D{PTk: 3, PTn: 2}
	if err := g.ForGridCtx(ctx, func(k, n int) { cells.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if cells.Load() != 6 {
		t.Fatalf("grid ran %d cells, want 6", cells.Load())
	}
}

// A worker panic under a *Ctx driver still surfaces as the fault
// runtime's error, not as a cancellation.
func TestForCtxWorkerPanicStillClassifies(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerPanic, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	err := ForCtx(ctx, 16, 4, func(i int) {})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("a fault is not a cancellation")
	}
}

// WaitCtx's hooks fire on the right sides of an abandonment: onAbandon
// synchronously before the error returns, drain only after the
// stragglers terminate.
func TestWaitCtxDrainAfterAbandonment(t *testing.T) {
	release := make(chan struct{})
	var g Group
	g.Go(func() { <-release })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var abandoned, drained atomic.Bool
	err := g.WaitCtx(ctx,
		func(err error) { abandoned.Store(errors.Is(err, ErrCanceled)) },
		func() { drained.Store(true) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !abandoned.Load() {
		t.Fatal("onAbandon must run synchronously with the cancellation error")
	}
	if drained.Load() {
		t.Fatal("drain must not run while a worker is still pending")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for !drained.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain never ran after the straggler terminated")
		}
		time.Sleep(time.Millisecond)
	}
	waitLeakedWorkersZero(t)
}
