// Package simd models the ARMv8 NEON execution resources the paper's
// micro-kernels are written against: 32 architectural vector registers
// (V0–V31), each 128 bits wide holding 4 FP32 lanes, and the fused
// multiply-accumulate (FMLA) instruction family.
//
// The paper's kernels are hand-written NEON assembly; Go has no vector
// intrinsics, so this package substitutes a 4-lane value type (Vec4)
// whose operations correspond 1:1 to the NEON instructions the paper
// uses:
//
//	NEON                    simd
//	----                    ----
//	ld1 {v.4s}, [x]         Load
//	st1 {v.4s}, [x]         v.Store
//	dup v.4s, w             Broadcast
//	fmla v.4s, a.4s, b.4s   v.FMA (vector × vector)
//	fmla v.4s, a.4s, b.s[i] v.FMALane (vector × scalar lane)
//
// Micro-kernels in internal/core keep their working set within the
// 32-register budget so that the register-allocation constraint
// (Equation 3 of the paper) is honoured structurally, not just on
// paper. The Go compiler keeps Vec4 values in machine registers on
// amd64/arm64 for kernels written in this style.
package simd

// Width is the number of FP32 lanes per vector register (128-bit NEON).
const Width = 4

// NumRegs is the architectural vector register count on ARMv8.
const NumRegs = 32

// Vec4 is one 128-bit NEON register holding 4 float32 lanes.
type Vec4 [Width]float32

// Zero returns an all-zero vector (movi v.4s, #0).
func Zero() Vec4 { return Vec4{} }

// Broadcast returns a vector with x in every lane (dup v.4s, w).
func Broadcast(x float32) Vec4 { return Vec4{x, x, x, x} }

// Load reads 4 contiguous floats from s (ld1 {v.4s}).
// s must have at least 4 elements.
func Load(s []float32) Vec4 {
	_ = s[3]
	return Vec4{s[0], s[1], s[2], s[3]}
}

// LoadPartial reads up to 4 floats, zero-filling missing lanes. Used at
// ragged tile edges where NEON code would use masked/element loads.
func LoadPartial(s []float32) Vec4 {
	var v Vec4
	n := len(s)
	if n > Width {
		n = Width
	}
	for i := 0; i < n; i++ {
		v[i] = s[i]
	}
	return v
}

// Store writes the 4 lanes to s (st1 {v.4s}).
func (v Vec4) Store(s []float32) {
	_ = s[3]
	s[0], s[1], s[2], s[3] = v[0], v[1], v[2], v[3]
}

// StorePartial writes min(len(s), 4) lanes.
func (v Vec4) StorePartial(s []float32) {
	n := len(s)
	if n > Width {
		n = Width
	}
	for i := 0; i < n; i++ {
		s[i] = v[i]
	}
}

// Add returns v + b lane-wise (fadd).
func (v Vec4) Add(b Vec4) Vec4 {
	return Vec4{v[0] + b[0], v[1] + b[1], v[2] + b[2], v[3] + b[3]}
}

// Sub returns v - b lane-wise (fsub).
func (v Vec4) Sub(b Vec4) Vec4 {
	return Vec4{v[0] - b[0], v[1] - b[1], v[2] - b[2], v[3] - b[3]}
}

// Mul returns v * b lane-wise (fmul).
func (v Vec4) Mul(b Vec4) Vec4 {
	return Vec4{v[0] * b[0], v[1] * b[1], v[2] * b[2], v[3] * b[3]}
}

// FMA returns v + a*b lane-wise (fmla v, a, b — vector by vector).
func (v Vec4) FMA(a, b Vec4) Vec4 {
	return Vec4{v[0] + a[0]*b[0], v[1] + a[1]*b[1], v[2] + a[2]*b[2], v[3] + a[3]*b[3]}
}

// FMAScalar returns v + a*s lane-wise, the scalar-vector multiply the
// nDirect main micro-kernel is built from (fmla v.4s, a.4s, b.s[i]).
func (v Vec4) FMAScalar(a Vec4, s float32) Vec4 {
	return Vec4{v[0] + a[0]*s, v[1] + a[1]*s, v[2] + a[2]*s, v[3] + a[3]*s}
}

// Lane returns lane i (mov w, v.s[i]).
func (v Vec4) Lane(i int) float32 { return v[i] }

// Max returns the lane-wise maximum of v and b (fmax) — used by fused
// ReLU epilogues.
func (v Vec4) Max(b Vec4) Vec4 {
	r := v
	for i := 0; i < Width; i++ {
		if b[i] > r[i] {
			r[i] = b[i]
		}
	}
	return r
}

// HSum returns the horizontal sum of the 4 lanes (faddp tree).
func (v Vec4) HSum() float32 {
	return (v[0] + v[1]) + (v[2] + v[3])
}

// WidthF64 is the number of FP64 lanes per 128-bit register (§3.3:
// the techniques apply to FP64 with the lane count halved).
const WidthF64 = 2

// Vec2D is one 128-bit NEON register holding 2 float64 lanes
// (fmla v.2d).
type Vec2D [WidthF64]float64

// Load2D reads 2 contiguous float64s (ld1 {v.2d}).
func Load2D(s []float64) Vec2D {
	_ = s[1]
	return Vec2D{s[0], s[1]}
}

// Store writes the 2 lanes (st1 {v.2d}).
func (v Vec2D) Store(s []float64) {
	_ = s[1]
	s[0], s[1] = v[0], v[1]
}

// FMAScalar returns v + a*x lane-wise (fmla v.2d, a.2d, b.d[i]).
func (v Vec2D) FMAScalar(a Vec2D, x float64) Vec2D {
	return Vec2D{v[0] + a[0]*x, v[1] + a[1]*x}
}

// Add returns v + b lane-wise.
func (v Vec2D) Add(b Vec2D) Vec2D { return Vec2D{v[0] + b[0], v[1] + b[1]} }

// Lane returns lane i.
func (v Vec2D) Lane(i int) float64 { return v[i] }
