package simd

import (
	"testing"
	"testing/quick"
)

func TestZeroAndBroadcast(t *testing.T) {
	if Zero() != (Vec4{}) {
		t.Fatal("Zero not zero")
	}
	v := Broadcast(2.5)
	for i := 0; i < Width; i++ {
		if v.Lane(i) != 2.5 {
			t.Fatalf("lane %d = %v", i, v.Lane(i))
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5}
	v := Load(src)
	dst := make([]float32, 4)
	v.Store(dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("lane %d: %v != %v", i, dst[i], src[i])
		}
	}
}

func TestLoadPartialZeroFills(t *testing.T) {
	v := LoadPartial([]float32{7, 8})
	want := Vec4{7, 8, 0, 0}
	if v != want {
		t.Fatalf("got %v, want %v", v, want)
	}
	// Longer-than-width input only reads 4 lanes.
	v = LoadPartial([]float32{1, 2, 3, 4, 5, 6})
	if v != (Vec4{1, 2, 3, 4}) {
		t.Fatalf("got %v", v)
	}
}

func TestStorePartial(t *testing.T) {
	v := Vec4{1, 2, 3, 4}
	dst := []float32{9, 9, 9}
	v.StorePartial(dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("dst = %v", dst)
	}
	long := make([]float32, 6)
	v.StorePartial(long)
	if long[3] != 4 || long[4] != 0 {
		t.Fatalf("long = %v", long)
	}
}

func TestArithmetic(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{10, 20, 30, 40}
	if a.Add(b) != (Vec4{11, 22, 33, 44}) {
		t.Fatal("Add")
	}
	if b.Sub(a) != (Vec4{9, 18, 27, 36}) {
		t.Fatal("Sub")
	}
	if a.Mul(b) != (Vec4{10, 40, 90, 160}) {
		t.Fatal("Mul")
	}
}

func TestFMA(t *testing.T) {
	acc := Vec4{1, 1, 1, 1}
	a := Vec4{2, 3, 4, 5}
	b := Vec4{10, 10, 10, 10}
	if acc.FMA(a, b) != (Vec4{21, 31, 41, 51}) {
		t.Fatal("FMA")
	}
	if acc.FMAScalar(a, 10) != (Vec4{21, 31, 41, 51}) {
		t.Fatal("FMAScalar")
	}
}

func TestMaxAndHSum(t *testing.T) {
	a := Vec4{-1, 5, -3, 7}
	if a.Max(Zero()) != (Vec4{0, 5, 0, 7}) {
		t.Fatal("Max (ReLU)")
	}
	if got := (Vec4{1, 2, 3, 4}).HSum(); got != 10 {
		t.Fatalf("HSum = %v", got)
	}
}

// Property: FMAScalar(a, s) == FMA(a, Broadcast(s)) for all inputs —
// the two NEON encodings compute the same thing.
func TestFMAScalarEquivalenceProperty(t *testing.T) {
	f := func(acc, a Vec4, s float32) bool {
		return acc.FMAScalar(a, s) == acc.FMA(a, Broadcast(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Zero is its identity.
func TestAddAlgebraProperty(t *testing.T) {
	f := func(a, b Vec4) bool {
		return a.Add(b) == b.Add(a) && a.Add(Zero()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
