package im2col

import (
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

const tol = 2e-5

func TestNeedsLowering(t *testing.T) {
	oneByOne := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 1, S: 1, Str: 1, Pad: 0}
	if NeedsLowering(oneByOne) {
		t.Fatal("1x1 s1 p0 must skip lowering")
	}
	for _, s := range []conv.Shape{
		{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 4, H: 8, W: 8, K: 4, R: 1, S: 1, Str: 2, Pad: 0},
	} {
		if !NeedsLowering(s) {
			t.Fatalf("%v must need lowering", s)
		}
	}
}

func TestLowerIdentity1x1Stride1(t *testing.T) {
	// For a 1x1 stride-1 kernel the lowered matrix equals the input
	// plane.
	s := conv.Shape{N: 1, C: 3, H: 4, W: 4, K: 1, R: 1, S: 1, Str: 1, Pad: 0}
	in := s.NewInput()
	in.FillSequence()
	dst := make([]float32, s.C*s.H*s.W)
	Lower(s, in, 0, dst)
	for i := range dst {
		if dst[i] != in.Data[i] {
			t.Fatalf("identity lowering broken at %d", i)
		}
	}
}

func TestLowerKnownPatch(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad: column (0,0) must be
	// the top-left 2x2 patch in (r,s) order.
	s := conv.Shape{N: 1, C: 1, H: 3, W: 3, K: 1, R: 2, S: 2, Str: 1, Pad: 0}
	in := s.NewInput()
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	pq := s.P() * s.Q() // 4
	dst := make([]float32, 4*pq)
	Lower(s, in, 0, dst)
	// Rows are (r,s) = (0,0),(0,1),(1,0),(1,1); first column is output (0,0).
	wantFirstCol := []float32{1, 2, 4, 5}
	for row, w := range wantFirstCol {
		if dst[row*pq] != w {
			t.Fatalf("row %d first col = %v, want %v", row, dst[row*pq], w)
		}
	}
}

func TestLowerPaddingZeros(t *testing.T) {
	s := conv.Shape{N: 1, C: 1, H: 2, W: 2, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.Fill(1)
	pq := s.P() * s.Q()
	dst := make([]float32, 9*pq)
	Lower(s, in, 0, dst)
	// Row (r=0,s=0), output (0,0) reads input (-1,-1) -> 0.
	if dst[0] != 0 {
		t.Fatal("padding position must be zero")
	}
	// Row (r=1,s=1), output (0,0) reads input (0,0) -> 1.
	if dst[4*pq] != 1 {
		t.Fatal("centre tap must read the image")
	}
}

func checkConv(t *testing.T, s conv.Shape) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C + s.K))
	f := s.NewFilter()
	f.FillRandom(int64(s.R))
	want := conv.Reference(s, in, f)
	got, _ := Conv2D(s, in, f, Options{Threads: 2})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v: rel diff %g", s, d)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	checkConv(t, conv.Shape{N: 2, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 8, R: 1, S: 1, Str: 1, Pad: 0})
	checkConv(t, conv.Shape{N: 1, C: 4, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 3, H: 20, W: 20, K: 8, R: 7, S: 7, Str: 2, Pad: 3})
	checkConv(t, conv.Shape{N: 1, C: 8, H: 9, W: 9, K: 8, R: 1, S: 1, Str: 2, Pad: 0})
}

func TestConv2DStats(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	_, st := Conv2D(s, in, f, Options{Threads: 1, CollectStats: true})
	if st.Im2colSec <= 0 || st.KernelSec <= 0 {
		t.Fatalf("stats missing: %+v", st)
	}
	if st.Total() != st.Im2colSec+st.PackSec+st.KernelSec {
		t.Fatal("Total inconsistent")
	}
	// 1x1 path must not report lowering time.
	s1 := conv.Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 1, S: 1, Str: 1, Pad: 0}
	f1 := s1.NewFilter()
	f1.FillRandom(3)
	_, st1 := Conv2D(s1, in, f1, Options{Threads: 1, CollectStats: true})
	if st1.Im2colSec != 0 {
		t.Fatal("1x1 path must skip lowering")
	}
}

// Property: im2col+GEMM agrees with the reference on random shapes.
func TestConv2DRandomProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw uint8, strRaw bool, seed int64) bool {
		str := 1
		if strRaw {
			str = 2
		}
		s := conv.Shape{
			N: 1, C: int(cRaw)%9 + 1,
			H: int(hRaw)%10 + 5, W: int(hRaw)%12 + 5,
			K: int(kRaw)%17 + 1, R: 3, S: 3, Str: str, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got, _ := Conv2D(s, in, fl, Options{Threads: 2})
		return tensor.RelDiff(want, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every column of the lowered matrix is one receptive
// field — so summing a column equals the convolution of that output
// position with an all-ones filter.
func TestLowerColumnSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := conv.Shape{N: 1, C: 3, H: 7, W: 7, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
		in := s.NewInput()
		in.FillRandom(seed)
		pq := s.P() * s.Q()
		crs := s.C * s.R * s.S
		cols := make([]float32, crs*pq)
		Lower(s, in, 0, cols)
		ones := s.NewFilter()
		ones.Fill(1)
		want := conv.Reference(s, in, ones)
		for col := 0; col < pq; col++ {
			var sum float64
			for row := 0; row < crs; row++ {
				sum += float64(cols[row*pq+col])
			}
			if d := sum - float64(want.Data[col]); d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
