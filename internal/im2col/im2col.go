// Package im2col implements the im2col+GEMM convolution baseline
// (§2.2): each image is lowered to a [C·R·S, P·Q] column matrix and
// multiplied by the [K, C·R·S] filter matrix using the Goto SGEMM
// substrate — the MXNet + OpenBLAS configuration of the paper's
// evaluation.
//
// The per-stage timers (lowering, GEMM packing, GEMM micro-kernel)
// feed the Figure 1a runtime-breakdown experiment, which shows the
// im2col data duplication and the sequential packing costing up to
// 40% of some layers' time.
package im2col

import (
	"fmt"
	"sync"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/gemm"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Options configure the baseline.
type Options struct {
	// Threads is the total worker count; the batch dimension is
	// parallelised first (one image per worker, the large-batch
	// inference configuration), remaining workers split the GEMM.
	Threads int
	// CollectStats records the per-stage times.
	CollectStats bool
}

// Stats is the Figure 1a cost breakdown of one convolution.
type Stats struct {
	Im2colSec float64 // tensor-to-matrix lowering (data duplication)
	PackSec   float64 // GEMM operand packing
	KernelSec float64 // GEMM micro-kernel
}

// Total returns the summed stage time.
func (s Stats) Total() float64 { return s.Im2colSec + s.PackSec + s.KernelSec }

// Lower writes the im2col matrix of image n into dst, which must hold
// (C·R·S)·(P·Q) floats: dst[(c·R+r)·S+s][oj·Q+oi] =
// I[n][c][oj·str−pad+r][oi·str−pad+s], zero outside the image.
func Lower(s conv.Shape, in *tensor.Tensor, n int, dst []float32) {
	p, q := s.P(), s.Q()
	pq := p * q
	for c := 0; c < s.C; c++ {
		chanBase := (n*s.C + c) * s.H * s.W
		for r := 0; r < s.R; r++ {
			for ss := 0; ss < s.S; ss++ {
				row := dst[((c*s.R+r)*s.S+ss)*pq : ((c*s.R+r)*s.S+ss+1)*pq]
				for oj := 0; oj < p; oj++ {
					ih := oj*s.Str - s.Pad + r
					dRow := row[oj*q : (oj+1)*q]
					if ih < 0 || ih >= s.H {
						clear(dRow)
						continue
					}
					src := in.Data[chanBase+ih*s.W : chanBase+(ih+1)*s.W]
					if s.Str == 1 {
						packShifted(dRow, src, ss-s.Pad, s.W)
					} else {
						for oi := 0; oi < q; oi++ {
							iw := oi*s.Str - s.Pad + ss
							if iw < 0 || iw >= s.W {
								dRow[oi] = 0
							} else {
								dRow[oi] = src[iw]
							}
						}
					}
				}
			}
		}
	}
}

// packShifted copies src shifted by off into dst with zero halos
// (stride-1 fast path).
func packShifted(dst, src []float32, off, w int) {
	x := 0
	for ; x < len(dst) && off+x < 0; x++ {
		dst[x] = 0
	}
	end := len(dst)
	if off+end > w {
		end = w - off
	}
	if end > x {
		copy(dst[x:end], src[off+x:off+end])
		x = end
	}
	for ; x < len(dst); x++ {
		dst[x] = 0
	}
}

// NeedsLowering reports whether the shape requires an explicit im2col
// transform. 1×1 stride-1 unpadded convolutions multiply the input
// directly (the paper's layers 19–20, where "GEMM methods achieve
// close to 50% of the peak").
func NeedsLowering(s conv.Shape) bool {
	return !(s.R == 1 && s.S == 1 && s.Str == 1 && s.Pad == 0)
}

// TryConv2D is the checked form of Conv2D: malformed operands come
// back as an error wrapping conv.ErrBadShape/ErrDimMismatch, and a
// panic raised inside the lowering or GEMM workers (re-thrown on this
// goroutine by parallel.MustFor) is recovered into an error instead of
// unwinding the caller. The nn dispatch uses this to fall back to
// nDirect when a baseline backend faults.
func TryConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (out *tensor.Tensor, st Stats, err error) {
	if err = s.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err = conv.ValidateOperands(s, in, filter); err != nil {
		return nil, Stats{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			out, st, err = nil, Stats{}, fmt.Errorf("im2col: execution fault: %v", r)
		}
	}()
	out, st = Conv2D(s, in, filter, opt)
	return out, st, nil
}

// Conv2D runs the im2col+GEMM convolution on NCHW input and KCRS
// filter, returning the NKPQ output and the stage breakdown.
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, Stats) {
	conv.CheckOperands(s, in, filter)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()
	pq := p * q
	crs := s.C * s.R * s.S
	out := s.NewOutput()

	// One image per worker across the batch; GEMM threads inside an
	// image only when the batch cannot fill the workers.
	gemmThreads := max(1, threads/min(threads, s.N))

	var mu sync.Mutex
	var total Stats
	parallel.MustFor(s.N, threads, func(n int) {
		var st Stats
		cOut := out.Data[n*s.K*pq : (n+1)*s.K*pq]
		if !NeedsLowering(s) {
			// Direct GEMM on the input plane: [K,C] × [C,H·W].
			g := gemm.Gemm(s.K, pq, crs, 1, filter.Data, crs,
				in.Data[n*s.C*s.H*s.W:(n+1)*s.C*s.H*s.W], pq,
				0, cOut, pq, gemm.Config{Threads: gemmThreads, CollectStats: opt.CollectStats})
			st.PackSec = g.PackSec()
			st.KernelSec = g.KernelSec
		} else {
			cols := make([]float32, crs*pq)
			t0 := time.Now()
			Lower(s, in, n, cols)
			st.Im2colSec = time.Since(t0).Seconds()
			g := gemm.Gemm(s.K, pq, crs, 1, filter.Data, crs, cols, pq,
				0, cOut, pq, gemm.Config{Threads: gemmThreads, CollectStats: opt.CollectStats})
			st.PackSec = g.PackSec()
			st.KernelSec = g.KernelSec
		}
		if opt.CollectStats {
			mu.Lock()
			total.Im2colSec += st.Im2colSec
			total.PackSec += st.PackSec
			total.KernelSec += st.KernelSec
			mu.Unlock()
		}
	})
	return out, total
}
