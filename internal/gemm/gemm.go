// Package gemm is a from-scratch Goto-algorithm single-precision
// matrix multiply — the OpenBLAS substitute backing the im2col+GEMM
// convolution baseline and the LIBXSMM-style batch-reduce kernels.
//
// Structure follows Goto & van de Geijn ("Anatomy of High-Performance
// Matrix Multiplication"): the K dimension is blocked by KC, N by NC
// and M by MC; B panels are packed into KC×NR column strips and A
// panels into MR×KC row strips; an MR×NR register micro-kernel (8×12,
// 24 Vec4 accumulators — the same register budget as nDirect's
// kernel) performs the innermost rank-KC update. The packing stages
// are separately timed so the harness can reproduce the Figure 1a
// cost breakdown.
package gemm

import (
	"sync"
	"time"

	"ndirect/internal/parallel"
)

// Register micro-kernel dimensions: MR rows of C by NR columns.
const (
	MR = 8
	NR = 12
)

// Cache block sizes (floats): KC×NR B-strips live in L1, MC×KC A
// panels in L2, KC×NC B panels in the LLC — the classic Goto
// assignment.
const (
	defaultMC = 128
	defaultKC = 256
	defaultNC = 3072
)

// Config controls an SGEMM invocation.
type Config struct {
	// Threads is the worker count (0 = one per available core).
	Threads int
	// CollectStats records packing vs kernel time into the returned
	// Stats.
	CollectStats bool
	// MC/KC/NC override the cache block sizes (0 keeps defaults).
	MC, KC, NC int
}

// Stats reports where SGEMM time went (total across workers).
type Stats struct {
	PackASec, PackBSec, KernelSec float64
}

// PackSec returns the combined packing time.
func (s Stats) PackSec() float64 { return s.PackASec + s.PackBSec }

// Gemm computes C = alpha·A·B + beta·C for row-major dense matrices:
// A is m×k with leading dimension lda, B is k×n (ldb), C is m×n (ldc).
func Gemm(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int,
	beta float32, c []float32, ldc int, cfg Config) Stats {
	if m <= 0 || n <= 0 || k <= 0 {
		return Stats{}
	}
	mc, kc, nc := cfg.MC, cfg.KC, cfg.NC
	if mc <= 0 {
		mc = defaultMC
	}
	if kc <= 0 {
		kc = defaultKC
	}
	if nc <= 0 {
		nc = defaultNC
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}

	var mu sync.Mutex
	var total Stats

	// Loop 5 (jc over N by NC) and loop 4 (pc over K by KC) are
	// sequential; loop 3 (ic over M by MC) is parallelised, the
	// standard multi-threaded Goto decomposition: every worker shares
	// the packed B panel and packs its own A block.
	for jc := 0; jc < n; jc += nc {
		ncEff := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcEff := min(kc, k-pc)
			betaEff := beta
			if pc > 0 {
				betaEff = 1
			}
			bPanel := make([]float32, kcEff*roundUp(ncEff, NR))
			t0 := time.Now()
			packB(b, bPanel, pc, jc, kcEff, ncEff, ldb)
			tPackB := time.Since(t0).Seconds()

			mBlocks := (m + mc - 1) / mc
			var st Stats
			var stMu sync.Mutex
			parallel.MustFor(mBlocks, threads, func(ib int) {
				ic := ib * mc
				mcEff := min(mc, m-ic)
				aPanel := make([]float32, kcEff*roundUp(mcEff, MR))
				t1 := time.Now()
				packA(a, aPanel, ic, pc, mcEff, kcEff, lda)
				dPack := time.Since(t1).Seconds()
				t1 = time.Now()
				macroKernel(aPanel, bPanel, c, ic, jc, mcEff, ncEff, kcEff, ldc, alpha, betaEff)
				dKern := time.Since(t1).Seconds()
				if cfg.CollectStats {
					stMu.Lock()
					st.PackASec += dPack
					st.KernelSec += dKern
					stMu.Unlock()
				}
			})
			if cfg.CollectStats {
				mu.Lock()
				total.PackASec += st.PackASec
				total.PackBSec += tPackB
				total.KernelSec += st.KernelSec
				mu.Unlock()
			}
		}
	}
	return total
}

// Multiply is the common case C = A·B (beta = 0) with default blocks.
func Multiply(m, n, k int, a, b, c []float32, threads int) {
	Gemm(m, n, k, 1, a, k, b, n, 0, c, n, Config{Threads: threads})
}

// Naive computes C = A·B with the textbook triple loop — the
// unoptimised GEMM used by the ACL_GEMM motivation baseline and as a
// small-case oracle in tests.
func Naive(m, n, k int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			c[i*n+j] = float32(acc)
		}
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }
