package gemm

import "ndirect/internal/simd"

// packA copies the mc×kc block of A starting at (ic, pc) into MR-row
// panels: aPanel[panel][kk][i] with i the row within the panel. Rows
// past m are zero so the micro-kernel can always run full MR.
func packA(a, aPanel []float32, ic, pc, mc, kc, lda int) {
	panels := (mc + MR - 1) / MR
	for pnl := 0; pnl < panels; pnl++ {
		base := pnl * MR * kc
		for kk := 0; kk < kc; kk++ {
			for i := 0; i < MR; i++ {
				row := pnl*MR + i
				var v float32
				if row < mc {
					v = a[(ic+row)*lda+pc+kk]
				}
				aPanel[base+kk*MR+i] = v
			}
		}
	}
}

// packB copies the kc×nc block of B starting at (pc, jc) into NR-col
// strips: bPanel[strip][kk][j]. Columns past n are zero.
func packB(b, bPanel []float32, pc, jc, kc, nc, ldb int) {
	strips := (nc + NR - 1) / NR
	for st := 0; st < strips; st++ {
		base := st * NR * kc
		j0 := st * NR
		width := min(NR, nc-j0)
		for kk := 0; kk < kc; kk++ {
			src := b[(pc+kk)*ldb+jc+j0:]
			dst := bPanel[base+kk*NR : base+kk*NR+NR]
			for j := 0; j < width; j++ {
				dst[j] = src[j]
			}
			for j := width; j < NR; j++ {
				dst[j] = 0
			}
		}
	}
}

// macroKernel runs the micro-kernel over every MR×NR tile of the
// mc×nc C block.
func macroKernel(aPanel, bPanel, c []float32, ic, jc, mc, nc, kc, ldc int, alpha, beta float32) {
	mPanels := (mc + MR - 1) / MR
	nStrips := (nc + NR - 1) / NR
	for st := 0; st < nStrips; st++ {
		bStrip := bPanel[st*NR*kc:]
		j0 := jc + st*NR
		nEff := min(NR, nc-st*NR)
		for pnl := 0; pnl < mPanels; pnl++ {
			aStrip := aPanel[pnl*MR*kc:]
			i0 := ic + pnl*MR
			mEff := min(MR, mc-pnl*MR)
			microKernel(aStrip, bStrip, c, i0, j0, mEff, nEff, kc, ldc, alpha, beta)
		}
	}
}

// microKernel computes the rank-kc update of one MR×NR C tile:
// 24 Vec4 accumulators (8 rows × 12 columns), three B vector loads
// and eight A scalar broadcasts per k step — the GEMM counterpart of
// nDirect's Algorithm 3 register tile.
func microKernel(aStrip, bStrip, c []float32, i0, j0, mEff, nEff, kc, ldc int, alpha, beta float32) {
	var acc [MR * NR / simd.Width]simd.Vec4
	for kk := 0; kk < kc; kk++ {
		bRow := bStrip[kk*NR : kk*NR+NR]
		b0 := simd.Load(bRow)
		b1 := simd.Load(bRow[4:])
		b2 := simd.Load(bRow[8:])
		aRow := aStrip[kk*MR : kk*MR+MR]
		for i := 0; i < MR; i++ {
			v := aRow[i]
			acc[3*i] = acc[3*i].FMAScalar(b0, v)
			acc[3*i+1] = acc[3*i+1].FMAScalar(b1, v)
			acc[3*i+2] = acc[3*i+2].FMAScalar(b2, v)
		}
	}
	for i := 0; i < mEff; i++ {
		row := c[(i0+i)*ldc+j0:]
		for j := 0; j < nEff; j++ {
			v := alpha * acc[3*i+j/simd.Width][j%simd.Width]
			if beta != 0 {
				v += beta * row[j]
			}
			row[j] = v
		}
	}
}
