package gemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(m, n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, m*n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestGemmMatchesNaiveSquare(t *testing.T) {
	const n = 64
	a := randMat(n, n, 1)
	b := randMat(n, n, 2)
	want := make([]float32, n*n)
	Naive(n, n, n, a, b, want)
	got := make([]float32, n*n)
	Multiply(n, n, n, a, b, got, 2)
	if d := maxDiff(want, got); d > 1e-4 {
		t.Fatalf("diff %g", d)
	}
}

func TestGemmRaggedDimensions(t *testing.T) {
	// Every dimension deliberately non-multiple of the block sizes.
	for _, dims := range [][3]int{{7, 5, 3}, {13, 29, 17}, {1, 1, 1}, {9, 130, 11}, {130, 9, 260}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(m, k, int64(m))
		b := randMat(k, n, int64(n))
		want := make([]float32, m*n)
		Naive(m, n, k, a, b, want)
		got := make([]float32, m*n)
		Multiply(m, n, k, a, b, got, 3)
		if d := maxDiff(want, got); d > 1e-3 {
			t.Fatalf("dims %v: diff %g", dims, d)
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	const m, n, k = 16, 24, 8
	a := randMat(m, k, 5)
	b := randMat(k, n, 6)
	c0 := randMat(m, n, 7)

	ab := make([]float32, m*n)
	Naive(m, n, k, a, b, ab)
	want := make([]float32, m*n)
	for i := range want {
		want[i] = 2*ab[i] + 0.5*c0[i]
	}
	got := append([]float32(nil), c0...)
	Gemm(m, n, k, 2, a, k, b, n, 0.5, got, n, Config{Threads: 1})
	if d := maxDiff(want, got); d > 1e-4 {
		t.Fatalf("alpha/beta diff %g", d)
	}
}

func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	const m, n, k = 20, 20, 20
	a := randMat(m, k, 8)
	b := randMat(k, n, 9)
	want := make([]float32, m*n)
	Naive(m, n, k, a, b, want)
	got := make([]float32, m*n)
	for i := range got {
		got[i] = float32(math.NaN()) // beta=0 must not read C
	}
	Gemm(m, n, k, 1, a, k, b, n, 0, got, n, Config{Threads: 1})
	if d := maxDiff(want, got); d > 1e-4 || math.IsNaN(float64(got[0])) {
		t.Fatalf("beta=0 read old C (diff %g)", d)
	}
}

func TestGemmLeadingDimensions(t *testing.T) {
	// Operate on sub-matrices embedded in larger buffers.
	const m, n, k, lda, ldb, ldc = 8, 8, 8, 12, 13, 14
	a := randMat(m, lda, 10)
	b := randMat(k, ldb, 11)
	c := make([]float32, m*ldc)
	aSub := make([]float32, m*k)
	bSub := make([]float32, k*n)
	for i := 0; i < m; i++ {
		copy(aSub[i*k:], a[i*lda:i*lda+k])
	}
	for i := 0; i < k; i++ {
		copy(bSub[i*n:], b[i*ldb:i*ldb+n])
	}
	want := make([]float32, m*n)
	Naive(m, n, k, aSub, bSub, want)
	Gemm(m, n, k, 1, a, lda, b, ldb, 0, c, ldc, Config{Threads: 1})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(float64(c[i*ldc+j] - want[i*n+j])); d > 1e-4 {
				t.Fatalf("(%d,%d) diff %g", i, j, d)
			}
		}
	}
}

func TestGemmSmallBlocksMultiPanel(t *testing.T) {
	// Tiny cache blocks force the KC/MC/NC loops to iterate.
	const m, n, k = 40, 50, 60
	a := randMat(m, k, 12)
	b := randMat(k, n, 13)
	want := make([]float32, m*n)
	Naive(m, n, k, a, b, want)
	got := make([]float32, m*n)
	Gemm(m, n, k, 1, a, k, b, n, 0, got, n, Config{Threads: 2, MC: 16, KC: 8, NC: 24})
	if d := maxDiff(want, got); d > 1e-3 {
		t.Fatalf("multi-panel diff %g", d)
	}
}

func TestGemmThreadCountInvariant(t *testing.T) {
	const m, n, k = 64, 48, 32
	a := randMat(m, k, 14)
	b := randMat(k, n, 15)
	one := make([]float32, m*n)
	Multiply(m, n, k, a, b, one, 1)
	eight := make([]float32, m*n)
	Multiply(m, n, k, a, b, eight, 8)
	if d := maxDiff(one, eight); d != 0 {
		t.Fatalf("threading changed result by %g", d)
	}
}

func TestGemmStats(t *testing.T) {
	const m, n, k = 64, 64, 64
	a := randMat(m, k, 16)
	b := randMat(k, n, 17)
	c := make([]float32, m*n)
	st := Gemm(m, n, k, 1, a, k, b, n, 0, c, n, Config{Threads: 1, CollectStats: true})
	if st.KernelSec <= 0 || st.PackSec() <= 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
}

func TestGemmDegenerate(t *testing.T) {
	st := Gemm(0, 4, 4, 1, nil, 1, nil, 4, 0, nil, 4, Config{})
	if st != (Stats{}) {
		t.Fatal("degenerate gemm must be a no-op")
	}
}

// Property: (A·B)·e_j column extraction matches naive per random
// rectangular sizes.
func TestGemmRandomShapesProperty(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8, seed int64) bool {
		m, n, k := int(mRaw)%30+1, int(nRaw)%30+1, int(kRaw)%30+1
		a := randMat(m, k, seed)
		b := randMat(k, n, seed+1)
		want := make([]float32, m*n)
		Naive(m, n, k, a, b, want)
		got := make([]float32, m*n)
		Multiply(m, n, k, a, b, got, 2)
		return maxDiff(want, got) <= 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplying by the identity leaves the matrix unchanged.
func TestGemmIdentityProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8, seed int64) bool {
		m, n := int(mRaw)%20+1, int(nRaw)%20+1
		a := randMat(m, n, seed)
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		got := make([]float32, m*n)
		Multiply(m, n, n, a, id, got, 1)
		return maxDiff(a, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)·C == A·(B·C) within FP32 tolerance.
func TestGemmAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 12
		a := randMat(n, n, seed)
		b := randMat(n, n, seed+1)
		c := randMat(n, n, seed+2)
		ab := make([]float32, n*n)
		Multiply(n, n, n, a, b, ab, 1)
		abc1 := make([]float32, n*n)
		Multiply(n, n, n, ab, c, abc1, 1)
		bc := make([]float32, n*n)
		Multiply(n, n, n, b, c, bc, 1)
		abc2 := make([]float32, n*n)
		Multiply(n, n, n, a, bc, abc2, 1)
		return maxDiff(abc1, abc2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
