package xsmm

import (
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

const tol = 2e-5

func checkConv(t *testing.T, s conv.Shape) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C*7 + s.K))
	f := s.NewFilter()
	f.FillRandom(int64(s.R * 13))
	want := conv.Reference(s, in, f)
	got, _ := Conv2D(s, in, f, Options{Threads: 2})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v: rel diff %g", s, d)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	checkConv(t, conv.Shape{N: 1, C: 16, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 24, R: 1, S: 1, Str: 1, Pad: 0})
	checkConv(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 3, H: 20, W: 20, K: 16, R: 7, S: 7, Str: 2, Pad: 3})
}

func TestConv2DBlockPadding(t *testing.T) {
	// C and K not multiples of the block sizes: padding lanes must
	// not pollute the result.
	checkConv(t, conv.Shape{N: 1, C: 5, H: 9, W: 9, K: 11, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 13, H: 7, W: 7, K: 3, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestConv2DRaggedRowTiles(t *testing.T) {
	// Q=7 not a multiple of rowTile=6; Q=5 smaller than one tile.
	checkConv(t, conv.Shape{N: 1, C: 8, H: 7, W: 7, K: 8, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 8, H: 5, W: 5, K: 8, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestConv2DStatsSeparateConversion(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	_, st := Conv2D(s, in, f, Options{Threads: 1})
	if st.ConvertInSec <= 0 || st.ConvertFilterSec <= 0 || st.ConvertOutSec <= 0 || st.KernelSec <= 0 {
		t.Fatalf("stats missing: %+v", st)
	}
	if st.Total() != st.ConvertSec()+st.KernelSec {
		t.Fatal("Total inconsistent")
	}
}

func TestConv2DBlockedKernelOnly(t *testing.T) {
	// Pre-converted operands: result must match the full pipeline.
	s := conv.Shape{N: 1, C: 16, H: 10, W: 10, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	want, _ := Conv2D(s, in, f, Options{Threads: 1})

	inB := tensor.NCHWToNCHWc(in, BlockC)
	fB := tensor.KCRSToCRSKc(f, BlockC, BlockK)
	outB := NewBlockedOutput(s)
	Conv2DBlocked(s, inB, fB, outB, Options{Threads: 1})
	got := tensor.NCHWcToNCHW(outB, s.K)
	if tensor.MaxAbsDiff(want, got) != 0 {
		t.Fatal("blocked-only path differs from pipeline")
	}
}

func TestConv2DThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 16, H: 12, W: 12, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(5)
	f := s.NewFilter()
	f.FillRandom(6)
	a, _ := Conv2D(s, in, f, Options{Threads: 1})
	b, _ := Conv2D(s, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("thread count changed result")
	}
}

// Property: random small shapes agree with the reference.
func TestConv2DRandomProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw uint8, strRaw bool, seed int64) bool {
		str := 1
		if strRaw {
			str = 2
		}
		s := conv.Shape{
			N: 1, C: int(cRaw)%19 + 1,
			H: int(hRaw)%9 + 4, W: int(hRaw)%11 + 4,
			K: int(kRaw)%23 + 1, R: 3, S: 3, Str: str, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got, _ := Conv2D(s, in, fl, Options{Threads: 2})
		return tensor.RelDiff(want, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
