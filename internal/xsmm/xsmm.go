// Package xsmm implements the LIBXSMM-style direct convolution the
// paper compares against (§2.3, Georganas et al. SC'18): activations
// in the blocked NCHWc layout, filters in [K/kb][C/cb][R][S][cb][kb],
// and a batch-reduce GEMM (BRGEMM) micro-kernel that accumulates one
// [rowTile × kb] output strip over the (c-block, r, s) reduction
// batch.
//
// Two properties of the original are reproduced deliberately:
//
//  1. The specialised data layout is incompatible with framework
//     tensors, so entering/leaving the operator costs a layout
//     conversion. Conv2D times the conversions separately; the
//     harness includes them for Figure 1a and excludes them for
//     Figure 4, exactly as the paper's methodology states.
//  2. The micro-kernel is GEMM-shaped (inner-product over the channel
//     block with sequential loads), giving a lower floating-point
//     arithmetic intensity than nDirect's convolution-specific
//     outer-product kernel — the performance gap §5 analyses.
package xsmm

import (
	"fmt"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// Block sizes of the specialised layout: cb input channels and kb
// output channels per block. kb=8 gives two vector registers of
// output channels, matching LIBXSMM's ARM NEON kernels.
const (
	BlockC = 8
	BlockK = 8
)

// rowTile is the number of output columns one BRGEMM micro-kernel
// invocation computes (the GEMM "M" dimension): 6×(8/4) = 12 Vec4
// accumulators, the small-tile regime the paper critiques.
const rowTile = 6

// Options configure the baseline.
type Options struct {
	Threads int
}

// Stats separates kernel time from the layout-conversion overhead.
type Stats struct {
	ConvertInSec     float64 // NCHW -> NCHWc
	ConvertFilterSec float64 // KCRS -> blocked filter
	ConvertOutSec    float64 // NCHWc -> NCHW
	KernelSec        float64 // BRGEMM micro-kernels
}

// ConvertSec returns the total format-conversion time (the cost the
// paper's Figure 1a shows dominating when LIBXSMM is fed framework
// tensors).
func (s Stats) ConvertSec() float64 { return s.ConvertInSec + s.ConvertFilterSec + s.ConvertOutSec }

// Total returns conversion plus kernel time.
func (s Stats) Total() float64 { return s.ConvertSec() + s.KernelSec }

// TryConv2D is the checked form of Conv2D: malformed operands come
// back as an error wrapping conv.ErrBadShape/ErrDimMismatch, and a
// panic raised inside the conversion or blocked-kernel workers
// (re-thrown on this goroutine by parallel.MustFor) is recovered into
// an error instead of unwinding the caller.
func TryConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (out *tensor.Tensor, st Stats, err error) {
	if err = s.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err = conv.ValidateOperands(s, in, filter); err != nil {
		return nil, Stats{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			out, st, err = nil, Stats{}, fmt.Errorf("xsmm: execution fault: %v", r)
		}
	}()
	out, st = Conv2D(s, in, filter, opt)
	return out, st, nil
}

// Conv2D runs the full LIBXSMM-style pipeline on framework tensors:
// convert NCHW/KCRS in, convolve in the blocked domain, convert back.
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, Stats) {
	conv.CheckOperands(s, in, filter)
	var st Stats

	t0 := time.Now()
	inB := tensor.NCHWToNCHWc(in, BlockC)
	st.ConvertInSec = time.Since(t0).Seconds()

	t0 = time.Now()
	fB := tensor.KCRSToCRSKc(filter, BlockC, BlockK)
	st.ConvertFilterSec = time.Since(t0).Seconds()

	outB := NewBlockedOutput(s)
	t0 = time.Now()
	Conv2DBlocked(s, inB, fB, outB, opt)
	st.KernelSec = time.Since(t0).Seconds()

	t0 = time.Now()
	outFull := tensor.NCHWcToNCHW(outB, s.K)
	st.ConvertOutSec = time.Since(t0).Seconds()
	return outFull, st
}

// NewBlockedOutput allocates the NKPQk output tensor for the shape.
func NewBlockedOutput(s conv.Shape) *tensor.Tensor {
	kBlocks := (s.K + BlockK - 1) / BlockK
	return tensor.New(s.N, kBlocks, s.P(), s.Q(), BlockK)
}

// Conv2DBlocked convolves pre-converted blocked tensors in place —
// the kernel-only configuration the paper measures in Figure 4
// ("we excluded this transformation time ... for a fair comparison").
// inB is [N][C/cb][H][W][cb], fB is [K/kb][C/cb][R][S][cb][kb], outB
// is [N][K/kb][P][Q][kb].
func Conv2DBlocked(s conv.Shape, inB, fB, outB *tensor.Tensor, opt Options) {
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	cBlocks := inB.Dims[1]
	kBlocks := outB.Dims[1]
	// LIBXSMM's OpenMP scheme: parallelise the N × K-block product.
	parallel.MustFor(s.N*kBlocks, threads, func(nk int) {
		n, kb := nk/kBlocks, nk%kBlocks
		convPlane(s, inB.Data, fB.Data, outB.Data, n, kb, cBlocks, kBlocks)
	})
}

// convPlane computes output block (n, kb) with BRGEMM micro-kernels:
// for each output row, row tiles of rowTile columns accumulate over
// the (c-block, r, s) reduction batch.
func convPlane(s conv.Shape, in, filter, out []float32, n, kb, cBlocks, kBlocks int) {
	p, q := s.P(), s.Q()
	for oh := 0; oh < p; oh++ {
		ihBase := oh*s.Str - s.Pad
		for ow0 := 0; ow0 < q; ow0 += rowTile {
			m := min(rowTile, q-ow0)
			var acc [rowTile * BlockK / simd.Width]simd.Vec4

			for cb := 0; cb < cBlocks; cb++ {
				for r := 0; r < s.R; r++ {
					ih := ihBase + r
					if ih < 0 || ih >= s.H {
						continue
					}
					rowBase := (((n*cBlocks+cb)*s.H + ih) * s.W) * BlockC
					for ss := 0; ss < s.S; ss++ {
						fBase := ((((kb*cBlocks+cb)*s.R+r)*s.S + ss) * BlockC) * BlockK
						iw0 := ow0*s.Str - s.Pad + ss
						if iw0 >= 0 && iw0+(m-1)*s.Str < s.W {
							brgemmStep(acc[:], in[rowBase+iw0*BlockC:], filter[fBase:], m, s.Str)
						} else {
							brgemmStepHalo(acc[:], in[rowBase:], filter[fBase:], m, s.Str, iw0, s.W)
						}
					}
				}
			}
			storeTile(acc[:], out, n, kb, kBlocks, oh, ow0, m, p, q)
		}
	}
}

// brgemmStep is one (c-block, r, s) term of the batch-reduce GEMM:
// an inner product over the cb channel lanes for each of the m output
// columns. Note the load pattern the paper critiques: per output
// column it issues cb sequential scalar loads and re-loads the kb
// filter vectors per (column, lane) pair far more often than
// nDirect's outer-product kernel.
func brgemmStep(acc []simd.Vec4, in, filter []float32, m, str int) {
	for i := 0; i < m; i++ {
		a0 := acc[2*i]
		a1 := acc[2*i+1]
		base := i * str * BlockC
		for kk := 0; kk < BlockC; kk++ {
			v := in[base+kk]
			f := filter[kk*BlockK:]
			a0 = a0.FMAScalar(simd.Load(f), v)
			a1 = a1.FMAScalar(simd.Load(f[4:]), v)
		}
		acc[2*i] = a0
		acc[2*i+1] = a1
	}
}

// brgemmStepHalo is the padding-aware variant for edge tiles.
func brgemmStepHalo(acc []simd.Vec4, inRow, filter []float32, m, str, iw0, w int) {
	for i := 0; i < m; i++ {
		iw := iw0 + i*str
		if iw < 0 || iw >= w {
			continue
		}
		a0 := acc[2*i]
		a1 := acc[2*i+1]
		base := iw * BlockC
		for kk := 0; kk < BlockC; kk++ {
			v := inRow[base+kk]
			f := filter[kk*BlockK:]
			a0 = a0.FMAScalar(simd.Load(f), v)
			a1 = a1.FMAScalar(simd.Load(f[4:]), v)
		}
		acc[2*i] = a0
		acc[2*i+1] = a1
	}
}

func storeTile(acc []simd.Vec4, out []float32, n, kb, kBlocks, oh, ow0, m, p, q int) {
	for i := 0; i < m; i++ {
		dst := out[((((n*kBlocks+kb)*p+oh)*q + ow0 + i) * BlockK):]
		acc[2*i].Store(dst)
		acc[2*i+1].Store(dst[4:])
	}
}
