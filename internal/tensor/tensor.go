// Package tensor provides dense FP32 tensors and the data layouts used
// by the nDirect reproduction: the framework-native layouts NCHW, NHWC
// and KCRS that nDirect preserves, plus the specialised layouts used by
// the baselines (NCHWc for LIBXSMM-style convolution, KRSC for
// XNNPACK-style indirect convolution, and KRSCk blocked filters).
//
// A Tensor is a flat float32 buffer plus a shape; the layout is carried
// by convention in the shape ordering, exactly as in the deep-learning
// frameworks the paper targets (MXNet, TensorFlow). Helper constructors
// and conversion routines translate between layouts and are used both
// by the baselines and by the harness when reproducing the layout
// transformation costs of Figure 1a.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float32 tensor. Data is stored row-major with the
// last dimension contiguous (the C convention used by NCHW frameworks).
type Tensor struct {
	Dims []int     // shape, outermost first
	Data []float32 // len == product(Dims)
}

// New allocates a zero-filled tensor with the given dimensions.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, dims))
		}
		n *= d
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: make([]float32, n)}
}

// FromSlice wraps an existing buffer. The buffer length must match the
// product of dims; the tensor shares the backing storage.
func FromSlice(data []float32, dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: buffer length %d does not match shape %v (want %d)", len(data), dims, n))
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Dims[i] }

// Strides returns the row-major strides of the tensor.
func (t *Tensor) Strides() []int {
	s := make([]int, len(t.Dims))
	stride := 1
	for i := len(t.Dims) - 1; i >= 0; i-- {
		s[i] = stride
		stride *= t.Dims[i]
	}
	return s
}

// At returns the element at the given multi-index. Intended for tests
// and examples, not hot loops.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Dims[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Dims))
		}
		off = off*t.Dims[i] + x
	}
	return off
}

// Reshape returns a tensor sharing this tensor's storage with a new
// shape; the element count must be unchanged.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Dims, dims))
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: t.Data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Dims...)
	copy(c.Data, t.Data)
	return c
}

// Zero resets all elements to zero.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values
// in [-1, 1) drawn from the given seed. Deterministic so experiments
// are reproducible run-to-run.
func (t *Tensor) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
}

// FillSequence fills with a small repeating ramp, handy for debugging
// layout conversions (value identifies the flat source index mod 251).
func (t *Tensor) FillSequence() {
	for i := range t.Data {
		t.Data[i] = float32(i % 251)
	}
}

// MaxAbsDiff returns the maximum elementwise |a-b|. Panics if shapes
// differ.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Dims, b.Dims))
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// RelDiff returns max |a-b| / (max |a| + eps), a scale-free error
// measure used by the correctness tests (FP32 accumulation order
// differs between algorithms).
func RelDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Dims, b.Dims))
	}
	var maxAbs, maxDiff float64
	for i := range a.Data {
		av := math.Abs(float64(a.Data[i]))
		if av > maxAbs {
			maxAbs = av
		}
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff / (maxAbs + 1e-30)
}

// SameShape reports whether a and b have identical dimensions.
func SameShape(a, b *Tensor) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Dims)
}
