package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("dims = %v", tt.Dims)
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestStrides(t *testing.T) {
	tt := New(2, 3, 4)
	s := tt.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("strides = %v, want %v", s, want)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if tt.Data[1*12+2*4+3] != 7.5 {
		t.Fatal("Set wrote to the wrong flat offset")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceSharesStorage(t *testing.T) {
	buf := make([]float32, 6)
	tt := FromSlice(buf, 2, 3)
	tt.Set(5, 1, 1)
	if buf[4] != 5 {
		t.Fatal("FromSlice must share storage")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func TestCloneIndependence(t *testing.T) {
	a := New(4)
	a.FillRandom(1)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] == 99 {
		t.Fatal("Clone must copy data")
	}
	if !SameShape(a, b) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestFillAndZero(t *testing.T) {
	a := New(8)
	a.Fill(3)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.FillRandom(42)
	b.FillRandom(42)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("FillRandom must be deterministic per seed")
	}
	c := New(100)
	c.FillRandom(43)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should differ")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestMaxAbsDiffAndRelDiff(t *testing.T) {
	a, b := New(3), New(3)
	a.Data = []float32{1, 2, 3}
	b.Data = []float32{1, 2.5, 3}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
	rd := RelDiff(a, b)
	if rd < 0.16 || rd > 0.17 {
		t.Fatalf("RelDiff = %v, want ~0.1667", rd)
	}
}

func TestLayoutStrings(t *testing.T) {
	cases := map[Layout]string{NCHW: "NCHW", NHWC: "NHWC", NCHWc: "NCHWc", KCRS: "KCRS", KRSC: "KRSC", KRSCk: "KRSCk"}
	for l, want := range cases {
		if l.String() != want {
			t.Fatalf("Layout %d String = %q, want %q", int(l), l.String(), want)
		}
	}
	if Layout(99).String() != "Layout(99)" {
		t.Fatal("unknown layout should print numerically")
	}
}

func TestNCHWNHWCRoundTrip(t *testing.T) {
	src := New(2, 3, 4, 5)
	src.FillRandom(7)
	back := NHWCToNCHW(NCHWToNHWC(src))
	if MaxAbsDiff(src, back) != 0 {
		t.Fatal("NCHW->NHWC->NCHW must round-trip exactly")
	}
}

func TestNCHWToNHWCElementMapping(t *testing.T) {
	src := New(1, 2, 2, 2)
	src.FillSequence()
	dst := NCHWToNHWC(src)
	// NCHW (0,c,h,w) must land at NHWC (0,h,w,c).
	for c := 0; c < 2; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				if src.At(0, c, h, w) != dst.At(0, h, w, c) {
					t.Fatalf("mismatch at c=%d h=%d w=%d", c, h, w)
				}
			}
		}
	}
}

func TestNCHWcRoundTripDividing(t *testing.T) {
	src := New(2, 8, 3, 3)
	src.FillRandom(9)
	blocked := NCHWToNCHWc(src, 4)
	wantDims := []int{2, 2, 3, 3, 4}
	for i, d := range wantDims {
		if blocked.Dims[i] != d {
			t.Fatalf("blocked dims %v, want %v", blocked.Dims, wantDims)
		}
	}
	back := NCHWcToNCHW(blocked, 8)
	if MaxAbsDiff(src, back) != 0 {
		t.Fatal("NCHWc round trip failed")
	}
}

func TestNCHWcRoundTripPadded(t *testing.T) {
	src := New(1, 6, 2, 2) // 6 channels, block 4 -> padded to 8
	src.FillRandom(11)
	blocked := NCHWToNCHWc(src, 4)
	if blocked.Dims[1] != 2 {
		t.Fatalf("expected 2 channel blocks, got %d", blocked.Dims[1])
	}
	back := NCHWcToNCHW(blocked, 6)
	if MaxAbsDiff(src, back) != 0 {
		t.Fatal("padded NCHWc round trip failed")
	}
	// Padding lanes must be zero.
	for ih := 0; ih < 2; ih++ {
		for iw := 0; iw < 2; iw++ {
			for lane := 2; lane < 4; lane++ {
				if blocked.At(0, 1, ih, iw, lane) != 0 {
					t.Fatal("channel padding must be zero")
				}
			}
		}
	}
}

func TestKCRSToKRSCMapping(t *testing.T) {
	src := New(2, 3, 2, 2)
	src.FillSequence()
	dst := KCRSToKRSC(src)
	for k := 0; k < 2; k++ {
		for c := 0; c < 3; c++ {
			for r := 0; r < 2; r++ {
				for s := 0; s < 2; s++ {
					if src.At(k, c, r, s) != dst.At(k, r, s, c) {
						t.Fatalf("mismatch at k=%d c=%d r=%d s=%d", k, c, r, s)
					}
				}
			}
		}
	}
}

func TestKCRSToKRSCkMappingAndPadding(t *testing.T) {
	src := New(5, 2, 3, 3) // K=5, block 4 -> 2 blocks, 3 padded lanes
	src.FillRandom(3)
	dst := KCRSToKRSCk(src, 4)
	if dst.Dims[0] != 2 || dst.Dims[4] != 4 {
		t.Fatalf("dims = %v", dst.Dims)
	}
	for k := 0; k < 5; k++ {
		for c := 0; c < 2; c++ {
			for r := 0; r < 3; r++ {
				for s := 0; s < 3; s++ {
					if src.At(k, c, r, s) != dst.At(k/4, r, s, c, k%4) {
						t.Fatalf("mismatch at k=%d c=%d r=%d s=%d", k, c, r, s)
					}
				}
			}
		}
	}
	for c := 0; c < 2; c++ {
		if dst.At(1, 0, 0, c, 3) != 0 {
			t.Fatal("K padding must be zero")
		}
	}
}

func TestKCRSToCRSKcMapping(t *testing.T) {
	src := New(8, 6, 3, 3)
	src.FillRandom(5)
	dst := KCRSToCRSKc(src, 4, 4)
	if dst.Dims[0] != 2 || dst.Dims[1] != 2 || dst.Dims[4] != 4 || dst.Dims[5] != 4 {
		t.Fatalf("dims = %v", dst.Dims)
	}
	for k := 0; k < 8; k++ {
		for c := 0; c < 6; c++ {
			for r := 0; r < 3; r++ {
				for s := 0; s < 3; s++ {
					if src.At(k, c, r, s) != dst.At(k/4, c/4, r, s, c%4, k%4) {
						t.Fatalf("mismatch at k=%d c=%d r=%d s=%d", k, c, r, s)
					}
				}
			}
		}
	}
}

// Property: layout conversions are bijections on the stored elements —
// sum of elements is preserved by every conversion (padding adds only
// zeros).
func TestLayoutConversionsPreserveSumProperty(t *testing.T) {
	sum := func(tt *Tensor) float64 {
		var s float64
		for _, v := range tt.Data {
			s += float64(v)
		}
		return s
	}
	// Summation order differs between layouts, so allow float64
	// rounding slack.
	close := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	f := func(seed int64) bool {
		src := New(2, 6, 4, 4)
		src.FillRandom(seed)
		filt := New(6, 6, 3, 3)
		filt.FillRandom(seed + 1)
		if !close(sum(NCHWToNHWC(src)), sum(src)) {
			return false
		}
		if !close(sum(NCHWToNCHWc(src, 4)), sum(src)) {
			return false
		}
		if !close(sum(KCRSToKRSC(filt)), sum(filt)) {
			return false
		}
		if !close(sum(KCRSToKRSCk(filt, 4)), sum(filt)) {
			return false
		}
		if !close(sum(KCRSToCRSKc(filt, 4, 4)), sum(filt)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	a.FillSequence()
	b := a.Reshape(3, 4)
	if b.Dims[0] != 3 || b.Dims[1] != 4 {
		t.Fatalf("dims = %v", b.Dims)
	}
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on element count mismatch")
		}
	}()
	a.Reshape(5, 5)
}
