package tensor

import "fmt"

// Layout identifies the dimension ordering of a convolution tensor.
// nDirect operates natively on NCHW/NHWC inputs and KCRS filters; the
// remaining layouts are used by baselines and cost the paper's "format
// conversion" stage when entering/leaving them (Figure 1a).
type Layout int

const (
	NCHW  Layout = iota // [batch, channels, height, width] — framework default
	NHWC                // [batch, height, width, channels] — TensorFlow/XNNPACK
	NCHWc               // [batch, channels/c, height, width, c] — LIBXSMM blocked
	KCRS                // [out-ch, in-ch, kernel-h, kernel-w] — framework filters
	KRSC                // [out-ch, kernel-h, kernel-w, in-ch] — XNNPACK filters
	KRSCk               // [out-ch/k, kernel-h, kernel-w, in-ch, k] — blocked filters
)

func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case NHWC:
		return "NHWC"
	case NCHWc:
		return "NCHWc"
	case KCRS:
		return "KCRS"
	case KRSC:
		return "KRSC"
	case KRSCk:
		return "KRSCk"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// NCHWToNHWC converts an activation tensor between the two framework
// layouts. src has dims [N,C,H,W]; the result has dims [N,H,W,C].
func NCHWToNHWC(src *Tensor) *Tensor {
	n, c, h, w := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	dst := New(n, h, w, c)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			sBase := (in*c + ic) * h * w
			for ih := 0; ih < h; ih++ {
				sRow := sBase + ih*w
				dRow := ((in*h+ih)*w)*c + ic
				for iw := 0; iw < w; iw++ {
					dst.Data[dRow+iw*c] = src.Data[sRow+iw]
				}
			}
		}
	}
	return dst
}

// NHWCToNCHW converts [N,H,W,C] back to [N,C,H,W].
func NHWCToNCHW(src *Tensor) *Tensor {
	n, h, w, c := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	dst := New(n, c, h, w)
	for in := 0; in < n; in++ {
		for ih := 0; ih < h; ih++ {
			for iw := 0; iw < w; iw++ {
				sBase := ((in*h+ih)*w + iw) * c
				for ic := 0; ic < c; ic++ {
					dst.Data[((in*c+ic)*h+ih)*w+iw] = src.Data[sBase+ic]
				}
			}
		}
	}
	return dst
}

// NCHWToNCHWc blocks the channel dimension by cb (LIBXSMM's layout:
// [N, C/cb, H, W, cb]). C must not need padding to keep the comparison
// with the paper honest: callers pass cb dividing C, or the function
// zero-pads the channel remainder, matching LIBXSMM's handling.
func NCHWToNCHWc(src *Tensor, cb int) *Tensor {
	n, c, h, w := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	cBlocks := (c + cb - 1) / cb
	dst := New(n, cBlocks, h, w, cb)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			cb0, cb1 := ic/cb, ic%cb
			sBase := (in*c + ic) * h * w
			dBase := (((in*cBlocks+cb0)*h)*w)*cb + cb1
			for ih := 0; ih < h; ih++ {
				sRow := sBase + ih*w
				dRow := dBase + ih*w*cb
				for iw := 0; iw < w; iw++ {
					dst.Data[dRow+iw*cb] = src.Data[sRow+iw]
				}
			}
		}
	}
	return dst
}

// NCHWcToNCHW undoes NCHWToNCHWc; c gives the true channel count
// (the blocked tensor may carry zero padding).
func NCHWcToNCHW(src *Tensor, c int) *Tensor {
	n, cBlocks, h, w, cb := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3], src.Dims[4]
	dst := New(n, c, h, w)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			cb0, cb1 := ic/cb, ic%cb
			if cb0 >= cBlocks {
				continue
			}
			dBase := (in*c + ic) * h * w
			sBase := (((in*cBlocks+cb0)*h)*w)*cb + cb1
			for ih := 0; ih < h; ih++ {
				dRow := dBase + ih*w
				sRow := sBase + ih*w*cb
				for iw := 0; iw < w; iw++ {
					dst.Data[dRow+iw] = src.Data[sRow+iw*cb]
				}
			}
		}
	}
	return dst
}

// KCRSToKRSC converts framework filters [K,C,R,S] to XNNPACK's
// [K,R,S,C].
func KCRSToKRSC(src *Tensor) *Tensor {
	k, c, r, s := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	dst := New(k, r, s, c)
	for ik := 0; ik < k; ik++ {
		for ic := 0; ic < c; ic++ {
			for ir := 0; ir < r; ir++ {
				for is := 0; is < s; is++ {
					dst.Data[((ik*r+ir)*s+is)*c+ic] = src.Data[((ik*c+ic)*r+ir)*s+is]
				}
			}
		}
	}
	return dst
}

// KCRSToKRSCk converts filters [K,C,R,S] to the output-channel-blocked
// layout [K/kb, R, S, C, kb] used by blocked direct convolutions
// (LIBXSMM-style; nDirect builds an equivalent blocking on the fly).
// The K remainder is zero padded.
func KCRSToKRSCk(src *Tensor, kb int) *Tensor {
	k, c, r, s := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	kBlocks := (k + kb - 1) / kb
	dst := New(kBlocks, r, s, c, kb)
	for ik := 0; ik < k; ik++ {
		kb0, kb1 := ik/kb, ik%kb
		for ic := 0; ic < c; ic++ {
			for ir := 0; ir < r; ir++ {
				for is := 0; is < s; is++ {
					dst.Data[(((kb0*r+ir)*s+is)*c+ic)*kb+kb1] = src.Data[((ik*c+ic)*r+ir)*s+is]
				}
			}
		}
	}
	return dst
}

// KCRSToCRSKc converts filters [K,C,R,S] to LIBXSMM's BRGEMM filter
// blocking [K/kb, C/cb, R, S, cb, kb]: for each (r,s) the innermost
// (cb, kb) panel is a small column-major matrix ready for a
// batch-reduce GEMM micro-kernel. Remainders in K and C are zero
// padded.
func KCRSToCRSKc(src *Tensor, cb, kb int) *Tensor {
	k, c, r, s := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	kBlocks := (k + kb - 1) / kb
	cBlocks := (c + cb - 1) / cb
	dst := New(kBlocks, cBlocks, r, s, cb, kb)
	for ik := 0; ik < k; ik++ {
		kb0, kb1 := ik/kb, ik%kb
		for ic := 0; ic < c; ic++ {
			cb0, cb1 := ic/cb, ic%cb
			for ir := 0; ir < r; ir++ {
				for is := 0; is < s; is++ {
					d := ((((kb0*cBlocks+cb0)*r+ir)*s+is)*cb+cb1)*kb + kb1
					dst.Data[d] = src.Data[((ik*c+ic)*r+ir)*s+is]
				}
			}
		}
	}
	return dst
}
