// Package hw describes the hardware platforms of the paper's
// evaluation (Table 3) and provides the α microbenchmark of §6.2 that
// calibrates the streaming vs non-streaming memory access cost ratio
// used by the thread-mapping model.
//
// The four ARM platforms cannot be executed on directly in this
// reproduction; their specifications parameterise the analytical
// models (internal/model) and the machine model (internal/simarch)
// that regenerate the paper's multi-platform figures.
package hw

import "fmt"

// ReplacementPolicy is the cache line replacement policy. The paper's
// Figure 5 discussion attributes the differing benefit of the packing
// optimisation across platforms to Phytium 2000+'s pseudo-random
// replacement vs LRU on KP920/ThunderX2.
type ReplacementPolicy int

const (
	LRU ReplacementPolicy = iota
	PseudoRandom
)

func (p ReplacementPolicy) String() string {
	if p == PseudoRandom {
		return "pseudo-random"
	}
	return "LRU"
}

// Cache describes one level of a cache hierarchy.
type Cache struct {
	SizeBytes int  // total capacity; 0 means the level does not exist
	LineBytes int  // cache line size
	Ways      int  // associativity
	Shared    bool // shared between cores (vs private per core)
	SharedBy  int  // number of cores sharing it when Shared
	Policy    ReplacementPolicy
	// LatencyCycles is the load-to-use latency of a hit in this level,
	// used by the machine model.
	LatencyCycles int
}

// Exists reports whether the cache level is present.
func (c Cache) Exists() bool { return c.SizeBytes > 0 }

// Platform describes one evaluation machine (one column of Table 3),
// plus the micro-architectural parameters the machine model needs.
type Platform struct {
	Name           string
	Cores          int
	ThreadsPerCore int     // >1 when SMT/hyper-threading is available (§8.5)
	FreqGHz        float64 // core clock
	PeakGFLOPS     float64 // FP32, all cores (Table 3)
	BandwidthGiBs  float64 // max memory bandwidth (Table 3)
	L1, L2, L3     Cache

	// FMAPipes is the number of 128-bit FMA pipelines per core; with
	// 4 FP32 lanes and 2 FLOPs per FMA, per-core peak is
	// FreqGHz * FMAPipes * 8 GFLOPS.
	FMAPipes int
	// FMALatency is the FMA result latency in cycles (accumulation
	// chains shorter than FMAPipes*FMALatency stall the pipes).
	FMALatency int
	// LoadPipes is the number of 128-bit load units per core.
	LoadPipes int
	// MemLatencyCycles is the main-memory load-to-use latency.
	MemLatencyCycles int
	// Alpha is the calibrated non-streaming/streaming access cost
	// ratio of §6.2 (measured offline on the real machine in the
	// paper; fixed representative values here, re-measurable with
	// MeasureAlpha on the host).
	Alpha float64
}

// PerCorePeakGFLOPS returns the single-core FP32 peak.
func (p Platform) PerCorePeakGFLOPS() float64 {
	return p.PeakGFLOPS / float64(p.Cores)
}

// LogicalCores returns cores × threads-per-core.
func (p Platform) LogicalCores() int {
	t := p.ThreadsPerCore
	if t < 1 {
		t = 1
	}
	return p.Cores * t
}

func (p Platform) String() string {
	return fmt.Sprintf("%s (%d cores @ %.1f GHz, %.1f GFLOPS FP32 peak)", p.Name, p.Cores, p.FreqGHz, p.PeakGFLOPS)
}

// The four evaluation platforms of Table 3. Cache organisation notes
// from §7.1: Phytium 2000+'s L2 is shared per 4-core cluster; KP920
// and ThunderX2 have private L2 and a shared L3; RPi 4 (Cortex-A72)
// has a shared 1 MB L2 and no L3.
var (
	Phytium2000 = Platform{
		Name:             "Phytium 2000+",
		Cores:            64,
		ThreadsPerCore:   1,
		FreqGHz:          2.2,
		PeakGFLOPS:       1126.4,
		BandwidthGiBs:    143.1,
		L1:               Cache{SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, Policy: PseudoRandom, LatencyCycles: 4},
		L2:               Cache{SizeBytes: 2 << 20, LineBytes: 64, Ways: 16, Shared: true, SharedBy: 4, Policy: PseudoRandom, LatencyCycles: 20},
		L3:               Cache{}, // none
		FMAPipes:         1,       // 1126.4 GFLOPS / 64 cores / 2.2 GHz = 8 FLOPs/cycle = one 4-lane FMA pipe
		FMALatency:       4,
		LoadPipes:        1,
		MemLatencyCycles: 160,
		Alpha:            2.0,
	}

	KP920 = Platform{
		Name:             "KP920",
		Cores:            64,
		ThreadsPerCore:   1,
		FreqGHz:          2.6,
		PeakGFLOPS:       2662.4,
		BandwidthGiBs:    190.7,
		L1:               Cache{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Policy: LRU, LatencyCycles: 4},
		L2:               Cache{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, Policy: LRU, LatencyCycles: 14},
		L3:               Cache{SizeBytes: 64 << 20, LineBytes: 64, Ways: 16, Shared: true, SharedBy: 64, Policy: LRU, LatencyCycles: 45},
		FMAPipes:         2,
		FMALatency:       4,
		LoadPipes:        2,
		MemLatencyCycles: 180,
		Alpha:            1.8,
	}

	ThunderX2 = Platform{
		Name:             "ThunderX2",
		Cores:            32,
		ThreadsPerCore:   4, // SMT4, disabled except in the Fig. 9 experiment
		FreqGHz:          2.5,
		PeakGFLOPS:       1279.7,
		BandwidthGiBs:    158.95,
		L1:               Cache{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Policy: LRU, LatencyCycles: 4},
		L2:               Cache{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, Policy: LRU, LatencyCycles: 12},
		L3:               Cache{SizeBytes: 32 << 20, LineBytes: 64, Ways: 16, Shared: true, SharedBy: 32, Policy: LRU, LatencyCycles: 40},
		FMAPipes:         2,
		FMALatency:       5,
		LoadPipes:        2,
		MemLatencyCycles: 170,
		Alpha:            2.2,
	}

	RPi4 = Platform{
		Name:             "RPi 4",
		Cores:            4,
		ThreadsPerCore:   1,
		FreqGHz:          1.8,
		PeakGFLOPS:       56.8,
		BandwidthGiBs:    16.8,
		L1:               Cache{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Policy: LRU, LatencyCycles: 4},
		L2:               Cache{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Shared: true, SharedBy: 4, Policy: LRU, LatencyCycles: 21},
		L3:               Cache{},
		FMAPipes:         1,
		FMALatency:       7,
		LoadPipes:        1,
		MemLatencyCycles: 140,
		Alpha:            2.5,
	}
)

// Platforms lists the evaluation machines in Table 3 column order.
var Platforms = []Platform{Phytium2000, KP920, ThunderX2, RPi4}

// ByName returns the platform with the given name (case-sensitive
// match on Name, or the short aliases phytium/kp920/tx2/rpi4).
func ByName(name string) (Platform, bool) {
	switch name {
	case "phytium", "Phytium 2000+", "phytium2000+":
		return Phytium2000, true
	case "kp920", "KP920":
		return KP920, true
	case "tx2", "thunderx2", "ThunderX2":
		return ThunderX2, true
	case "rpi4", "RPi 4", "rpi":
		return RPi4, true
	}
	for _, p := range Platforms {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// EffectiveL2Bytes returns the L2 capacity available to one core,
// accounting for sharing (Phytium's cluster-shared L2 gives each of
// the 4 sharing cores a quarter of the capacity under full load).
func (p Platform) EffectiveL2Bytes() int {
	if !p.L2.Exists() {
		return 0
	}
	if p.L2.Shared && p.L2.SharedBy > 1 {
		return p.L2.SizeBytes / p.L2.SharedBy
	}
	return p.L2.SizeBytes
}

// EffectiveL3Bytes returns the per-core share of the last-level cache.
func (p Platform) EffectiveL3Bytes() int {
	if !p.L3.Exists() {
		return 0
	}
	if p.L3.Shared && p.L3.SharedBy > 1 {
		return p.L3.SizeBytes / p.L3.SharedBy
	}
	return p.L3.SizeBytes
}

// LLC returns the last-level cache of the platform.
func (p Platform) LLC() Cache {
	if p.L3.Exists() {
		return p.L3
	}
	return p.L2
}
