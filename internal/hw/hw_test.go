package hw

import "testing"

func TestTable3Values(t *testing.T) {
	// Spot-check the Table 3 entries the analytical models depend on.
	if Phytium2000.Cores != 64 || Phytium2000.PeakGFLOPS != 1126.4 {
		t.Fatal("Phytium 2000+ specs wrong")
	}
	if Phytium2000.L3.Exists() {
		t.Fatal("Phytium 2000+ has no L3")
	}
	if KP920.L1.SizeBytes != 64<<10 || KP920.L2.SizeBytes != 512<<10 || KP920.L3.SizeBytes != 64<<20 {
		t.Fatal("KP920 cache sizes wrong")
	}
	if ThunderX2.Cores != 32 || ThunderX2.ThreadsPerCore != 4 {
		t.Fatal("ThunderX2 core/SMT config wrong")
	}
	if RPi4.PeakGFLOPS != 56.8 || RPi4.L3.Exists() {
		t.Fatal("RPi 4 specs wrong")
	}
}

func TestPerCorePeak(t *testing.T) {
	got := Phytium2000.PerCorePeakGFLOPS()
	if got < 17.5 || got > 17.7 { // 1126.4 / 64 = 17.6
		t.Fatalf("per-core peak = %v, want 17.6", got)
	}
	// Per-core peak must be consistent with the pipe model:
	// freq * pipes * 4 lanes * 2 flops.
	model := Phytium2000.FreqGHz * float64(Phytium2000.FMAPipes) * 8
	if model < 17.59 || model > 17.61 {
		t.Fatalf("pipe model per-core peak = %v, want 17.6", model)
	}
}

func TestPipeModelMatchesTable3(t *testing.T) {
	// For every platform the (pipes × lanes × 2 × freq × cores)
	// product must reproduce the Table 3 peak within 2% (RPi 4's
	// published 56.8 is slightly below the 57.6 pipe product).
	for _, p := range Platforms {
		model := p.FreqGHz * float64(p.FMAPipes) * 8 * float64(p.Cores)
		ratio := model / p.PeakGFLOPS
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%s: pipe-model peak %.1f vs Table 3 %.1f", p.Name, model, p.PeakGFLOPS)
		}
	}
}

func TestLogicalCores(t *testing.T) {
	if ThunderX2.LogicalCores() != 128 {
		t.Fatalf("TX2 logical cores = %d, want 128", ThunderX2.LogicalCores())
	}
	if Phytium2000.LogicalCores() != 64 {
		t.Fatal("Phytium logical cores wrong")
	}
	p := Platform{Cores: 2} // ThreadsPerCore unset → treated as 1
	if p.LogicalCores() != 2 {
		t.Fatal("unset ThreadsPerCore must default to 1")
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"phytium", "Phytium 2000+", "kp920", "tx2", "thunderx2", "rpi4"} {
		if _, ok := ByName(alias); !ok {
			t.Fatalf("alias %q not resolved", alias)
		}
	}
	if _, ok := ByName("x86"); ok {
		t.Fatal("unknown platform must not resolve")
	}
	p, _ := ByName("KP920")
	if p.Name != "KP920" {
		t.Fatal("wrong platform for KP920")
	}
}

func TestEffectiveCaches(t *testing.T) {
	// Phytium's 2MB L2 is shared by a 4-core cluster -> 512KB/core.
	if got := Phytium2000.EffectiveL2Bytes(); got != 512<<10 {
		t.Fatalf("Phytium effective L2 = %d, want 512KiB", got)
	}
	// KP920's L2 is private.
	if got := KP920.EffectiveL2Bytes(); got != 512<<10 {
		t.Fatalf("KP920 effective L2 = %d", got)
	}
	// KP920's 64MB L3 shared by 64 cores -> 1MB/core.
	if got := KP920.EffectiveL3Bytes(); got != 1<<20 {
		t.Fatalf("KP920 effective L3 = %d", got)
	}
	if Phytium2000.EffectiveL3Bytes() != 0 {
		t.Fatal("Phytium has no L3")
	}
}

func TestLLC(t *testing.T) {
	if Phytium2000.LLC().SizeBytes != 2<<20 {
		t.Fatal("Phytium LLC should be its L2")
	}
	if KP920.LLC().SizeBytes != 64<<20 {
		t.Fatal("KP920 LLC should be its L3")
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || PseudoRandom.String() != "pseudo-random" {
		t.Fatal("policy strings")
	}
	if Phytium2000.L1.Policy != PseudoRandom {
		t.Fatal("Phytium caches are pseudo-random replacement (paper §8.1)")
	}
}

func TestMeasureAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("alpha microbenchmark is timing-based")
	}
	a := MeasureAlpha()
	if a < 1 || a > 16 {
		t.Fatalf("alpha = %v outside clamp range", a)
	}
}
