package hw

import "time"

// MeasureAlpha runs the §6.2 microbenchmark on the host: it times a
// streaming pass (unit-stride) and a non-streaming pass (large-stride,
// cache-line hopping) over the same number of loaded elements and
// returns the cost ratio α = t_nonstream / t_stream.
//
// The paper determines α offline per platform the same way; the value
// feeds the thread-mapping model (Equation 5). The returned value is
// clamped to [1, 16] to keep the model well-behaved on noisy hosts.
func MeasureAlpha() float64 {
	const elems = 1 << 22 // 16 MiB of float32, larger than typical LLC shares
	buf := make([]float32, elems)
	for i := range buf {
		buf[i] = float32(i&1023) * 0.5
	}

	stream := func() float64 {
		start := time.Now()
		var s float32
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < elems; i++ {
				s += buf[i]
			}
		}
		sink = s
		return time.Since(start).Seconds()
	}

	// Non-streaming: stride of one cache line plus an odd offset so
	// consecutive accesses hit different lines and defeat the
	// hardware prefetcher's unit-stride detection.
	nonStream := func() float64 {
		const stride = 16 + 1 // floats: one 64-byte line + 4 bytes
		start := time.Now()
		var s float32
		idx := 0
		for n := 0; n < 4*elems; n++ {
			s += buf[idx]
			idx += stride
			if idx >= elems {
				idx -= elems
			}
		}
		sink = s
		return time.Since(start).Seconds()
	}

	// Warm both paths once, then measure.
	stream()
	nonStream()
	ts := stream()
	tn := nonStream()
	alpha := tn / ts
	if alpha < 1 {
		alpha = 1
	}
	if alpha > 16 {
		alpha = 16
	}
	return alpha
}

// sink defeats dead-code elimination of the microbenchmark loops.
var sink float32
