package ndirect

import (
	"fmt"

	"ndirect/internal/hw"
	"ndirect/internal/simarch"
)

// Projection is the machine model's performance estimate for one
// algorithm on one platform (see DESIGN.md: this is the reproduction's
// substitute for the paper's ARM testbed).
type Projection struct {
	Algorithm string
	Platform  string
	Threads   int
	Seconds   float64
	GFLOPS    float64
	PctPeak   float64
	Bound     string // limiting resource: fma | load | latency | memory | serial
}

// Algorithms lists the projectable convolution implementations.
var Algorithms = []string{
	"ndirect", "ndirect-seqpack", "im2col+gemm", "libxsmm",
	"xnnpack", "acl-direct", "acl-gemm", "ansor",
}

// Project estimates the throughput of the named algorithm on the
// named platform (see Platforms) for the given layer shape, using
// `threads` worker threads (0 = all cores). It composes the analytical
// cycle model with the trace-driven cache simulator.
//
//	l, _ := ndirect.LayerByID(3)
//	pr, _ := ndirect.Project("ndirect", "phytium", l.Shape.WithBatch(64), 0)
//	fmt.Printf("%.0f GFLOPS (%.0f%% of peak)\n", pr.GFLOPS, pr.PctPeak*100)
func Project(algorithm, platform string, s Shape, threads int) (Projection, error) {
	p, ok := hw.ByName(platform)
	if !ok {
		return Projection{}, fmt.Errorf("ndirect: unknown platform %q", platform)
	}
	if threads <= 0 {
		threads = p.Cores
	}
	var prof simarch.Profile
	switch algorithm {
	case "ndirect":
		prof = simarch.ProfileNDirect(s, p, threads, false)
	case "ndirect-seqpack":
		prof = simarch.ProfileNDirect(s, p, threads, true)
	case "im2col+gemm", "im2col":
		prof = simarch.ProfileIm2colGEMM(s, p, threads)
	case "libxsmm":
		prof = simarch.ProfileXSMM(s, p, threads, false)
	case "xnnpack":
		prof = simarch.ProfileXNN(s, p, threads)
	case "acl-direct":
		prof = simarch.ProfileACLDirect(s, p, threads)
	case "acl-gemm":
		prof = simarch.ProfileACLGEMM(s, p, threads)
	case "ansor":
		prof = simarch.ProfileAnsor(s, p, threads)
	default:
		return Projection{}, fmt.Errorf("ndirect: unknown algorithm %q (want one of %v)", algorithm, Algorithms)
	}
	proj := simarch.Estimate(p, threads, prof)
	return Projection{
		Algorithm: algorithm,
		Platform:  p.Name,
		Threads:   threads,
		Seconds:   proj.Seconds,
		GFLOPS:    proj.GFLOPS,
		PctPeak:   proj.PctPeak,
		Bound:     proj.Bound,
	}, nil
}
