# Convenience targets; the source of truth is scripts/check.sh.

.PHONY: build test check fuzz bench benchjson benchsmoke

build:
	go build ./...

test:
	go test ./...

# Full verification gate: build + vet + race tests + fuzz smoke.
check:
	./scripts/check.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzTryConv2D -fuzztime=30s ./internal/core

bench:
	go test -run='^$$' -bench=. -benchtime=1x .

# Steady-state serving benchmarks as JSON (BENCH_steady.json).
benchjson:
	./scripts/bench_json.sh

# Allocation gate: steady-state paths must report 0 allocs/op.
benchsmoke:
	./scripts/bench_smoke.sh
