# Convenience targets; the source of truth is scripts/check.sh.

.PHONY: build test check fuzz bench

build:
	go build ./...

test:
	go test ./...

# Full verification gate: build + vet + race tests + fuzz smoke.
check:
	./scripts/check.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzTryConv2D -fuzztime=30s ./internal/core

bench:
	go test -run='^$$' -bench=. -benchtime=1x .
